//! Slot-level structured simulation events.

use ldcf_net::{NodeId, PacketId};
use serde::{Deserialize, Error, Serialize, Value};

/// Everything observable in one simulated slot.
///
/// Events are emitted in slot order by the engine; within a slot the
/// order is: `Mistimed*`, `TxAttempt*`, `Deferred*`, reception events
/// (`Delivered` / `Overheard` / `LinkLoss` / `Collision` /
/// `ReceiverBusy`, with `CoverageReached` interleaved at the reception
/// that triggered it), then one `SlotEnd`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SimEvent {
    /// A committed transmission (survived carrier sense).
    TxAttempt {
        /// Slot of the attempt.
        slot: u64,
        /// Transmitting node.
        sender: NodeId,
        /// Intended receiver.
        receiver: NodeId,
        /// Packet on the air.
        packet: PacketId,
        /// Oracle transmission (skips carrier sense / collisions).
        bypass_mac: bool,
    },
    /// A dedicated reception succeeded.
    Delivered {
        /// Slot of the reception.
        slot: u64,
        /// Transmitting node.
        sender: NodeId,
        /// Receiving node.
        receiver: NodeId,
        /// Packet received.
        packet: PacketId,
        /// First copy at this receiver (duplicates cost energy only).
        fresh: bool,
    },
    /// An un-addressed active node captured the packet.
    Overheard {
        /// Slot of the capture.
        slot: u64,
        /// Transmitting node.
        sender: NodeId,
        /// Overhearing node.
        receiver: NodeId,
        /// Packet captured.
        packet: PacketId,
        /// First copy at this receiver.
        fresh: bool,
    },
    /// A sole transmission was dropped by the link (Bernoulli loss).
    LinkLoss {
        /// Slot of the loss.
        slot: u64,
        /// Transmitting node.
        sender: NodeId,
        /// Intended receiver.
        receiver: NodeId,
        /// Packet lost.
        packet: PacketId,
    },
    /// Two or more hidden senders interfered at the receiver.
    Collision {
        /// Slot of the collision.
        slot: u64,
        /// One of the colliding senders (one event per sender).
        sender: NodeId,
        /// Receiver that heard garble.
        receiver: NodeId,
        /// Packet this sender was carrying.
        packet: PacketId,
    },
    /// The intended receiver was itself transmitting (semi-duplex).
    ReceiverBusy {
        /// Slot of the failure.
        slot: u64,
        /// Transmitting node.
        sender: NodeId,
        /// Busy receiver.
        receiver: NodeId,
        /// Packet involved.
        packet: PacketId,
    },
    /// A transmission missed its rendezvous (residual sync error); the
    /// energy is spent but nothing reaches the MAC.
    Mistimed {
        /// Slot of the mistimed attempt.
        slot: u64,
        /// Transmitting node.
        sender: NodeId,
        /// Receiver the sender believed was awake.
        receiver: NodeId,
        /// Packet involved.
        packet: PacketId,
    },
    /// Carrier sense silenced a would-be sender for this slot.
    Deferred {
        /// Slot of the deferral.
        slot: u64,
        /// The silenced sender.
        sender: NodeId,
        /// Receiver the silenced intent was aimed at.
        receiver: NodeId,
        /// Packet the silenced intent carried.
        packet: PacketId,
    },
    /// A packet reached its coverage target.
    CoverageReached {
        /// Slot coverage was reached.
        slot: u64,
        /// The covered packet.
        packet: PacketId,
        /// Sensors holding the packet at that moment.
        holders: u32,
    },
    /// Per-slot aggregate snapshot, emitted once per simulated slot.
    SlotEnd {
        /// The slot that just finished.
        slot: u64,
        /// Total queued packet entries across all nodes.
        queued: u64,
        /// Nodes whose working schedule had them awake this slot.
        active_nodes: u32,
    },
    /// A sole transmission was dropped while its link sat in the bad
    /// state of an injected Gilbert–Elliott burst. Supplementary to the
    /// `LinkLoss` already emitted for the same drop — trace consumers
    /// count the loss once and use this tag to attribute it to a burst.
    BurstLoss {
        /// Slot of the loss.
        slot: u64,
        /// Transmitting node.
        sender: NodeId,
        /// Intended receiver.
        receiver: NodeId,
        /// Packet lost.
        packet: PacketId,
    },
    /// A node crashed (fault injection): RAM wiped, off the air until
    /// it recovers.
    NodeCrashed {
        /// Slot of the crash.
        slot: u64,
        /// The crashed node.
        node: NodeId,
    },
    /// A crashed node rebooted with a fresh random working schedule.
    NodeRecovered {
        /// Slot of the reboot.
        slot: u64,
        /// The recovered node.
        node: NodeId,
    },
    /// The source re-queued a packet that node crashes had orphaned.
    SourceRetry {
        /// Slot of the retry.
        slot: u64,
        /// The re-queued packet.
        packet: PacketId,
    },
    /// One active slot of a node's periodic working schedule, emitted
    /// once per `(node, offset)` at the start of the run (slot 0). The
    /// full set lets trace consumers reconstruct every node's duty
    /// cycle — e.g. to tell sleep-waiting apart from queue blocking.
    ScheduleSlot {
        /// Always 0 (schedules are fixed for the whole run).
        slot: u64,
        /// The node whose schedule this describes.
        node: NodeId,
        /// The schedule period `T` in slots.
        period: u32,
        /// One active offset within `[0, period)`.
        offset: u32,
    },
    /// A packet entered the network at a node other than the default
    /// (source, slot 0) — a secondary flood origin, or a periodic
    /// workload's deferred injection at the source. Emitted before the
    /// slot's transmissions, so consumers learn a packet's origin before
    /// its first `TxAttempt`. Default single-source floods emit none of
    /// these (their traces are unchanged).
    PacketInjected {
        /// Slot of the injection.
        slot: u64,
        /// The origin node the packet was injected at.
        node: NodeId,
        /// The injected packet.
        packet: PacketId,
    },
}

impl SimEvent {
    /// The slot this event belongs to.
    pub fn slot(&self) -> u64 {
        match *self {
            SimEvent::TxAttempt { slot, .. }
            | SimEvent::Delivered { slot, .. }
            | SimEvent::Overheard { slot, .. }
            | SimEvent::LinkLoss { slot, .. }
            | SimEvent::Collision { slot, .. }
            | SimEvent::ReceiverBusy { slot, .. }
            | SimEvent::Mistimed { slot, .. }
            | SimEvent::Deferred { slot, .. }
            | SimEvent::CoverageReached { slot, .. }
            | SimEvent::SlotEnd { slot, .. }
            | SimEvent::BurstLoss { slot, .. }
            | SimEvent::NodeCrashed { slot, .. }
            | SimEvent::NodeRecovered { slot, .. }
            | SimEvent::SourceRetry { slot, .. }
            | SimEvent::ScheduleSlot { slot, .. }
            | SimEvent::PacketInjected { slot, .. } => slot,
        }
    }

    /// The JSONL type tag for this event.
    pub fn kind(&self) -> &'static str {
        match self {
            SimEvent::TxAttempt { .. } => "tx_attempt",
            SimEvent::Delivered { .. } => "delivered",
            SimEvent::Overheard { .. } => "overheard",
            SimEvent::LinkLoss { .. } => "link_loss",
            SimEvent::Collision { .. } => "collision",
            SimEvent::ReceiverBusy { .. } => "receiver_busy",
            SimEvent::Mistimed { .. } => "mistimed",
            SimEvent::Deferred { .. } => "deferred",
            SimEvent::CoverageReached { .. } => "coverage_reached",
            SimEvent::SlotEnd { .. } => "slot_end",
            SimEvent::BurstLoss { .. } => "burst_loss",
            SimEvent::NodeCrashed { .. } => "node_crashed",
            SimEvent::NodeRecovered { .. } => "node_recovered",
            SimEvent::SourceRetry { .. } => "source_retry",
            SimEvent::ScheduleSlot { .. } => "schedule_slot",
            SimEvent::PacketInjected { .. } => "packet_injected",
        }
    }

    /// The packet this event concerns, if it concerns one (per-slot
    /// aggregates, schedules, and crash/recovery events carry none).
    pub fn packet_id(&self) -> Option<PacketId> {
        match *self {
            SimEvent::TxAttempt { packet, .. }
            | SimEvent::Delivered { packet, .. }
            | SimEvent::Overheard { packet, .. }
            | SimEvent::LinkLoss { packet, .. }
            | SimEvent::Collision { packet, .. }
            | SimEvent::ReceiverBusy { packet, .. }
            | SimEvent::Mistimed { packet, .. }
            | SimEvent::Deferred { packet, .. }
            | SimEvent::CoverageReached { packet, .. }
            | SimEvent::BurstLoss { packet, .. }
            | SimEvent::SourceRetry { packet, .. }
            | SimEvent::PacketInjected { packet, .. } => Some(packet),
            SimEvent::SlotEnd { .. }
            | SimEvent::NodeCrashed { .. }
            | SimEvent::NodeRecovered { .. }
            | SimEvent::ScheduleSlot { .. } => None,
        }
    }

    /// Whether `node` participates in this event as sender, receiver,
    /// or subject (coverage milestones and slot aggregates involve no
    /// particular node and return `false`).
    pub fn involves(&self, node: NodeId) -> bool {
        match *self {
            SimEvent::TxAttempt {
                sender, receiver, ..
            }
            | SimEvent::Delivered {
                sender, receiver, ..
            }
            | SimEvent::Overheard {
                sender, receiver, ..
            }
            | SimEvent::LinkLoss {
                sender, receiver, ..
            }
            | SimEvent::Collision {
                sender, receiver, ..
            }
            | SimEvent::ReceiverBusy {
                sender, receiver, ..
            }
            | SimEvent::Mistimed {
                sender, receiver, ..
            }
            | SimEvent::Deferred {
                sender, receiver, ..
            }
            | SimEvent::BurstLoss {
                sender, receiver, ..
            } => sender == node || receiver == node,
            SimEvent::NodeCrashed { node: n, .. }
            | SimEvent::NodeRecovered { node: n, .. }
            | SimEvent::ScheduleSlot { node: n, .. }
            | SimEvent::PacketInjected { node: n, .. } => n == node,
            SimEvent::CoverageReached { .. }
            | SimEvent::SlotEnd { .. }
            | SimEvent::SourceRetry { .. } => false,
        }
    }
}

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

// The enum carries data, which the workspace's vendored derive does not
// support — the impls are written by hand against the stable JSONL
// schema documented in EXPERIMENTS.md.
impl Serialize for SimEvent {
    fn to_value(&self) -> Value {
        let t = Value::Str(self.kind().to_string());
        match *self {
            SimEvent::TxAttempt {
                slot,
                sender,
                receiver,
                packet,
                bypass_mac,
            } => obj(vec![
                ("t", t),
                ("slot", Value::UInt(slot)),
                ("sender", Value::UInt(sender.0 as u64)),
                ("receiver", Value::UInt(receiver.0 as u64)),
                ("packet", Value::UInt(packet as u64)),
                ("bypass_mac", Value::Bool(bypass_mac)),
            ]),
            SimEvent::Delivered {
                slot,
                sender,
                receiver,
                packet,
                fresh,
            }
            | SimEvent::Overheard {
                slot,
                sender,
                receiver,
                packet,
                fresh,
            } => obj(vec![
                ("t", t),
                ("slot", Value::UInt(slot)),
                ("sender", Value::UInt(sender.0 as u64)),
                ("receiver", Value::UInt(receiver.0 as u64)),
                ("packet", Value::UInt(packet as u64)),
                ("fresh", Value::Bool(fresh)),
            ]),
            SimEvent::LinkLoss {
                slot,
                sender,
                receiver,
                packet,
            }
            | SimEvent::Collision {
                slot,
                sender,
                receiver,
                packet,
            }
            | SimEvent::ReceiverBusy {
                slot,
                sender,
                receiver,
                packet,
            }
            | SimEvent::Mistimed {
                slot,
                sender,
                receiver,
                packet,
            }
            | SimEvent::BurstLoss {
                slot,
                sender,
                receiver,
                packet,
            } => obj(vec![
                ("t", t),
                ("slot", Value::UInt(slot)),
                ("sender", Value::UInt(sender.0 as u64)),
                ("receiver", Value::UInt(receiver.0 as u64)),
                ("packet", Value::UInt(packet as u64)),
            ]),
            SimEvent::Deferred {
                slot,
                sender,
                receiver,
                packet,
            } => obj(vec![
                ("t", t),
                ("slot", Value::UInt(slot)),
                ("sender", Value::UInt(sender.0 as u64)),
                ("receiver", Value::UInt(receiver.0 as u64)),
                ("packet", Value::UInt(packet as u64)),
            ]),
            SimEvent::CoverageReached {
                slot,
                packet,
                holders,
            } => obj(vec![
                ("t", t),
                ("slot", Value::UInt(slot)),
                ("packet", Value::UInt(packet as u64)),
                ("holders", Value::UInt(holders as u64)),
            ]),
            SimEvent::SlotEnd {
                slot,
                queued,
                active_nodes,
            } => obj(vec![
                ("t", t),
                ("slot", Value::UInt(slot)),
                ("queued", Value::UInt(queued)),
                ("active_nodes", Value::UInt(active_nodes as u64)),
            ]),
            SimEvent::NodeCrashed { slot, node } | SimEvent::NodeRecovered { slot, node } => {
                obj(vec![
                    ("t", t),
                    ("slot", Value::UInt(slot)),
                    ("node", Value::UInt(node.0 as u64)),
                ])
            }
            SimEvent::SourceRetry { slot, packet } => obj(vec![
                ("t", t),
                ("slot", Value::UInt(slot)),
                ("packet", Value::UInt(packet as u64)),
            ]),
            SimEvent::ScheduleSlot {
                slot,
                node,
                period,
                offset,
            } => obj(vec![
                ("t", t),
                ("slot", Value::UInt(slot)),
                ("node", Value::UInt(node.0 as u64)),
                ("period", Value::UInt(period as u64)),
                ("offset", Value::UInt(offset as u64)),
            ]),
            SimEvent::PacketInjected { slot, node, packet } => obj(vec![
                ("t", t),
                ("slot", Value::UInt(slot)),
                ("node", Value::UInt(node.0 as u64)),
                ("packet", Value::UInt(packet as u64)),
            ]),
        }
    }
}

fn field_u64(v: &Value, name: &str) -> Result<u64, Error> {
    v.get(name)
        .and_then(Value::as_u64)
        .ok_or_else(|| Error::missing_field("SimEvent", name))
}

fn field_bool(v: &Value, name: &str) -> Result<bool, Error> {
    match v.get(name) {
        Some(Value::Bool(b)) => Ok(*b),
        _ => Err(Error::missing_field("SimEvent", name)),
    }
}

fn field_node(v: &Value, name: &str) -> Result<NodeId, Error> {
    Ok(NodeId(field_u64(v, name)? as u32))
}

fn field_packet(v: &Value, name: &str) -> Result<PacketId, Error> {
    Ok(field_u64(v, name)? as PacketId)
}

impl Deserialize for SimEvent {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let tag = v
            .get("t")
            .and_then(Value::as_str)
            .ok_or_else(|| Error::missing_field("SimEvent", "t"))?;
        let slot = field_u64(v, "slot")?;
        match tag {
            "tx_attempt" => Ok(SimEvent::TxAttempt {
                slot,
                sender: field_node(v, "sender")?,
                receiver: field_node(v, "receiver")?,
                packet: field_packet(v, "packet")?,
                bypass_mac: field_bool(v, "bypass_mac")?,
            }),
            "delivered" => Ok(SimEvent::Delivered {
                slot,
                sender: field_node(v, "sender")?,
                receiver: field_node(v, "receiver")?,
                packet: field_packet(v, "packet")?,
                fresh: field_bool(v, "fresh")?,
            }),
            "overheard" => Ok(SimEvent::Overheard {
                slot,
                sender: field_node(v, "sender")?,
                receiver: field_node(v, "receiver")?,
                packet: field_packet(v, "packet")?,
                fresh: field_bool(v, "fresh")?,
            }),
            "link_loss" => Ok(SimEvent::LinkLoss {
                slot,
                sender: field_node(v, "sender")?,
                receiver: field_node(v, "receiver")?,
                packet: field_packet(v, "packet")?,
            }),
            "collision" => Ok(SimEvent::Collision {
                slot,
                sender: field_node(v, "sender")?,
                receiver: field_node(v, "receiver")?,
                packet: field_packet(v, "packet")?,
            }),
            "receiver_busy" => Ok(SimEvent::ReceiverBusy {
                slot,
                sender: field_node(v, "sender")?,
                receiver: field_node(v, "receiver")?,
                packet: field_packet(v, "packet")?,
            }),
            "mistimed" => Ok(SimEvent::Mistimed {
                slot,
                sender: field_node(v, "sender")?,
                receiver: field_node(v, "receiver")?,
                packet: field_packet(v, "packet")?,
            }),
            "deferred" => Ok(SimEvent::Deferred {
                slot,
                sender: field_node(v, "sender")?,
                receiver: field_node(v, "receiver")?,
                packet: field_packet(v, "packet")?,
            }),
            "coverage_reached" => Ok(SimEvent::CoverageReached {
                slot,
                packet: field_packet(v, "packet")?,
                holders: field_u64(v, "holders")? as u32,
            }),
            "slot_end" => Ok(SimEvent::SlotEnd {
                slot,
                queued: field_u64(v, "queued")?,
                active_nodes: field_u64(v, "active_nodes")? as u32,
            }),
            "burst_loss" => Ok(SimEvent::BurstLoss {
                slot,
                sender: field_node(v, "sender")?,
                receiver: field_node(v, "receiver")?,
                packet: field_packet(v, "packet")?,
            }),
            "node_crashed" => Ok(SimEvent::NodeCrashed {
                slot,
                node: field_node(v, "node")?,
            }),
            "node_recovered" => Ok(SimEvent::NodeRecovered {
                slot,
                node: field_node(v, "node")?,
            }),
            "source_retry" => Ok(SimEvent::SourceRetry {
                slot,
                packet: field_packet(v, "packet")?,
            }),
            "schedule_slot" => Ok(SimEvent::ScheduleSlot {
                slot,
                node: field_node(v, "node")?,
                period: field_u64(v, "period")? as u32,
                offset: field_u64(v, "offset")? as u32,
            }),
            "packet_injected" => Ok(SimEvent::PacketInjected {
                slot,
                node: field_node(v, "node")?,
                packet: field_packet(v, "packet")?,
            }),
            other => Err(Error::custom(format!("unknown SimEvent tag `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(ev: SimEvent) {
        let json = serde_json::to_string(&ev).unwrap();
        let back: SimEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ev, "JSONL roundtrip for {json}");
    }

    #[test]
    fn all_variants_roundtrip() {
        let s = NodeId(3);
        let r = NodeId(7);
        roundtrip(SimEvent::TxAttempt {
            slot: 10,
            sender: s,
            receiver: r,
            packet: 2,
            bypass_mac: true,
        });
        roundtrip(SimEvent::Delivered {
            slot: 10,
            sender: s,
            receiver: r,
            packet: 2,
            fresh: true,
        });
        roundtrip(SimEvent::Overheard {
            slot: 11,
            sender: s,
            receiver: r,
            packet: 0,
            fresh: false,
        });
        roundtrip(SimEvent::LinkLoss {
            slot: 12,
            sender: s,
            receiver: r,
            packet: 1,
        });
        roundtrip(SimEvent::Collision {
            slot: 13,
            sender: s,
            receiver: r,
            packet: 1,
        });
        roundtrip(SimEvent::ReceiverBusy {
            slot: 14,
            sender: s,
            receiver: r,
            packet: 1,
        });
        roundtrip(SimEvent::Mistimed {
            slot: 15,
            sender: s,
            receiver: r,
            packet: 3,
        });
        roundtrip(SimEvent::Deferred {
            slot: 16,
            sender: s,
            receiver: r,
            packet: 2,
        });
        roundtrip(SimEvent::CoverageReached {
            slot: 17,
            packet: 3,
            holders: 99,
        });
        roundtrip(SimEvent::SlotEnd {
            slot: 18,
            queued: 42,
            active_nodes: 5,
        });
        roundtrip(SimEvent::BurstLoss {
            slot: 19,
            sender: s,
            receiver: r,
            packet: 1,
        });
        roundtrip(SimEvent::NodeCrashed { slot: 20, node: r });
        roundtrip(SimEvent::NodeRecovered { slot: 21, node: r });
        roundtrip(SimEvent::SourceRetry {
            slot: 22,
            packet: 0,
        });
        roundtrip(SimEvent::ScheduleSlot {
            slot: 0,
            node: s,
            period: 100,
            offset: 37,
        });
        roundtrip(SimEvent::PacketInjected {
            slot: 23,
            node: s,
            packet: 4,
        });
    }

    #[test]
    fn kind_tags_are_stable() {
        let ev = SimEvent::Deferred {
            slot: 0,
            sender: NodeId(0),
            receiver: NodeId(1),
            packet: 0,
        };
        assert_eq!(ev.kind(), "deferred");
        assert_eq!(ev.slot(), 0);
        let json = serde_json::to_string(&ev).unwrap();
        assert!(json.contains("\"t\":\"deferred\""), "{json}");
    }
}
