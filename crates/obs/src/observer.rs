//! The engine-facing observer trait and basic observers.

use crate::event::SimEvent;

/// Receives every [`SimEvent`] the engine emits.
///
/// The engine is generic over its observer and consults
/// `Self::ENABLED` (a `const`) before *constructing* each event, so
/// with the default [`NullObserver`] every emission site monomorphizes
/// to dead code and the hot path pays nothing.
pub trait SimObserver {
    /// Whether the engine should construct and deliver events at all.
    /// Implementations that consume events leave this `true`.
    const ENABLED: bool = true;

    /// Handle one event. Called in slot order.
    fn on_event(&mut self, event: &SimEvent);

    /// Called once when the run terminates (after the last slot).
    fn on_finish(&mut self) {}
}

/// The default do-nothing observer; `ENABLED = false` compiles all
/// event construction out of the engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullObserver;

impl SimObserver for NullObserver {
    const ENABLED: bool = false;

    #[inline(always)]
    fn on_event(&mut self, _event: &SimEvent) {}
}

/// Collects every event into a vector — handy in tests and for
/// small-run analysis without touching the filesystem.
#[derive(Clone, Debug, Default)]
pub struct VecObserver {
    /// All events observed so far, in emission order.
    pub events: Vec<SimEvent>,
}

impl SimObserver for VecObserver {
    fn on_event(&mut self, event: &SimEvent) {
        self.events.push(*event);
    }
}

/// Observers compose as pairs: `(metrics, sink)` feeds both.
impl<A: SimObserver, B: SimObserver> SimObserver for (A, B) {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    fn on_event(&mut self, event: &SimEvent) {
        if A::ENABLED {
            self.0.on_event(event);
        }
        if B::ENABLED {
            self.1.on_event(event);
        }
    }

    fn on_finish(&mut self) {
        if A::ENABLED {
            self.0.on_finish();
        }
        if B::ENABLED {
            self.1.on_finish();
        }
    }
}

/// `&mut O` observes too, so an observer can be borrowed by an engine
/// and inspected afterwards without being consumed.
impl<O: SimObserver> SimObserver for &mut O {
    const ENABLED: bool = O::ENABLED;

    fn on_event(&mut self, event: &SimEvent) {
        (**self).on_event(event);
    }

    fn on_finish(&mut self) {
        (**self).on_finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldcf_net::NodeId;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn null_observer_is_disabled() {
        assert!(!NullObserver::ENABLED);
        assert!(VecObserver::ENABLED);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn pair_enabled_is_or() {
        assert!(<(NullObserver, VecObserver)>::ENABLED);
        assert!(!<(NullObserver, NullObserver)>::ENABLED);
    }

    #[test]
    fn pair_feeds_both_sides() {
        let mut pair = (VecObserver::default(), VecObserver::default());
        let ev = SimEvent::Deferred {
            slot: 1,
            sender: NodeId(2),
            receiver: NodeId(3),
            packet: 0,
        };
        pair.on_event(&ev);
        pair.on_finish();
        assert_eq!(pair.0.events, vec![ev]);
        assert_eq!(pair.1.events, vec![ev]);
    }

    #[test]
    fn mut_ref_observer_forwards() {
        let mut v = VecObserver::default();
        {
            let mut r = &mut v;
            SimObserver::on_event(
                &mut r,
                &SimEvent::Deferred {
                    slot: 9,
                    sender: NodeId(1),
                    receiver: NodeId(0),
                    packet: 4,
                },
            );
        }
        assert_eq!(v.events.len(), 1);
    }
}
