//! Runtime telemetry: engine phase timers, streaming histograms, and a
//! counting allocator — the simulator profiling itself.
//!
//! PRs 1–2 made the *simulated network* observable; this module makes
//! the *simulator* observable. Three pieces:
//!
//! * [`SimProfiler`] — the engine-facing phase-timer trait, designed
//!   exactly like [`SimObserver`](crate::SimObserver): an associated
//!   `const ENABLED` lets the default [`NullProfiler`] compile every
//!   timestamp out of the hot path, so an unprofiled engine pays
//!   nothing and stays byte-identical to one that never heard of
//!   profiling.
//! * [`StreamingHistogram`] — a fixed-memory log-bucketed histogram
//!   (HDR-style: exact below 16, then 8 sub-buckets per power of two,
//!   ≤ 12.5 % relative error) with p50/p95/p99/max readouts and a
//!   commutative [`merge`](StreamingHistogram::merge), so per-worker
//!   histograms fold into one deterministic aggregate whatever the
//!   rayon thread count.
//! * [`CountingAlloc`] — a `GlobalAlloc` wrapper that counts heap
//!   allocations, turning the "allocation-free hot path" claim into an
//!   enforced test gate instead of a changelog sentence.
//!
//! The [`PhaseProfiler`] ties the first two together: one streaming
//! histogram per engine [`Phase`] plus one for whole-slot cost. The
//! engine records phases along a single contiguous timestamp chain, so
//! per-slot phase times telescope — their sum equals the recorded slot
//! total *exactly*, by construction, not approximately.

use serde::Value;

// ---------------------------------------------------------------------
// Phase taxonomy
// ---------------------------------------------------------------------

/// The per-slot phases of the engine's `step()`, in execution order.
///
/// Each slot the engine walks these phases once (a phase whose guard is
/// off — e.g. [`Phase::Faults`] without a fault plan — records
/// nothing): where a slot's wall time goes, it goes to one of these.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Phase {
    /// Slot-0 setup and deferred packet injections entering queues.
    Injection = 0,
    /// Fault dynamics: churn transitions, the churn repair pass, and
    /// due source retries (zero-cost without an enabled fault plan).
    Faults = 1,
    /// Protocol `propose`: wake-calendar probes, nodes-with-work
    /// iteration, and intent construction.
    Propose = 2,
    /// Rendezvous filtering of proposed intents: residual mis-sync
    /// (`mistiming_prob`) and injected clock-drift misses.
    Sync = 3,
    /// MAC resolution (`mac::resolve_slot_into`): carrier sense,
    /// collisions, loss draws.
    Mac = 4,
    /// Applying MAC outcomes: deliveries, possession/queue updates,
    /// coverage accounting, event emission.
    Deliver = 5,
    /// Queue pruning of exhausted entries plus protocol `on_events`.
    Prune = 6,
    /// Duty-cycle energy accounting and slot-end bookkeeping.
    Energy = 7,
    /// Event-engine idle-span settlement: the next-rendezvous query plus
    /// the batched energy/metrics booking of every skipped slot. Records
    /// one segment per skip (never on the slot-stepped path), outside
    /// any slot, so the telescoping invariant — per-slot phase segments
    /// sum to the slot total — is preserved: skips add to phase totals
    /// and to the run's wall clock alike.
    IdleSkip = 8,
}

/// Number of phases in the taxonomy.
pub const N_PHASES: usize = 9;

impl Phase {
    /// All phases, in execution order.
    pub const ALL: [Phase; N_PHASES] = [
        Phase::Injection,
        Phase::Faults,
        Phase::Propose,
        Phase::Sync,
        Phase::Mac,
        Phase::Deliver,
        Phase::Prune,
        Phase::Energy,
        Phase::IdleSkip,
    ];

    /// Stable snake_case name (JSON artefact vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Injection => "injection",
            Phase::Faults => "faults",
            Phase::Propose => "propose",
            Phase::Sync => "sync",
            Phase::Mac => "mac",
            Phase::Deliver => "deliver",
            Phase::Prune => "prune",
            Phase::Energy => "energy",
            Phase::IdleSkip => "idle_skip",
        }
    }
}

// ---------------------------------------------------------------------
// Streaming histogram
// ---------------------------------------------------------------------

/// Buckets: values 0..16 exact, then 8 log sub-buckets per power of two
/// up to `u64::MAX` — 16 + 60 × 8 = 496 fixed counters (~4 KiB).
const EXACT: u64 = 16;
const SUBS: u32 = 8;
const N_BUCKETS: usize = EXACT as usize + ((64 - 4) * SUBS as usize);

/// A fixed-memory log-bucketed streaming histogram over `u64` samples
/// (the profiler feeds it nanoseconds; any unit works).
///
/// Values below 16 are exact; above, each power of two is split into 8
/// sub-buckets, bounding relative error at 12.5 %. Memory is constant
/// whatever the sample count, and [`merge`](Self::merge) is plain
/// counter addition — commutative and associative — so merging
/// per-worker histograms in input order yields bit-identical state
/// regardless of how many threads produced them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamingHistogram {
    counts: Box<[u64; N_BUCKETS]>,
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of recorded samples.
    pub sum: u64,
    /// Largest recorded sample (0 when empty).
    pub max: u64,
}

impl Default for StreamingHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Index of the bucket holding `v`.
fn bucket_index(v: u64) -> usize {
    if v < EXACT {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // ≥ 4
    let sub = ((v >> (msb - 3)) & 7) as usize;
    EXACT as usize + (msb - 4) as usize * SUBS as usize + sub
}

/// Lower bound of bucket `i` (inverse of [`bucket_index`]).
fn bucket_lo(i: usize) -> u64 {
    if i < EXACT as usize {
        return i as u64;
    }
    let off = i - EXACT as usize;
    let msb = (off / SUBS as usize) as u32 + 4;
    let sub = (off % SUBS as usize) as u64;
    (1u64 << msb) + (sub << (msb - 3))
}

impl StreamingHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: Box::new([0; N_BUCKETS]),
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Fold `other` into `self` (counter addition: commutative, so any
    /// merge order over the same inputs yields identical state).
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Mean of recorded samples (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Quantile `q ∈ [0, 1]` by nearest rank, reported as the holding
    /// bucket's midpoint (exact below 16; ≤ 12.5 % error above).
    /// `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                if i < EXACT as usize {
                    return Some(i as u64);
                }
                let lo = bucket_lo(i);
                let hi = if i + 1 < N_BUCKETS {
                    bucket_lo(i + 1)
                } else {
                    u64::MAX
                };
                return Some((lo + (hi - lo) / 2).min(self.max));
            }
        }
        unreachable!("rank ≤ count implies a bucket is found")
    }

    /// Median (p50).
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> Option<u64> {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// JSON rendering: summary stats plus the *sparse* bucket list
    /// (`[index, count]` pairs for non-empty buckets only, ascending),
    /// so artefacts stay small and merges stay byte-comparable.
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("count".into(), Value::UInt(self.count)),
            ("sum".into(), Value::UInt(self.sum)),
            ("max".into(), Value::UInt(self.max)),
            ("p50".into(), Value::UInt(self.p50().unwrap_or(0))),
            ("p95".into(), Value::UInt(self.p95().unwrap_or(0))),
            ("p99".into(), Value::UInt(self.p99().unwrap_or(0))),
            (
                "buckets".into(),
                Value::Array(
                    self.counts
                        .iter()
                        .enumerate()
                        .filter(|&(_, &c)| c > 0)
                        .map(|(i, &c)| Value::Array(vec![Value::UInt(i as u64), Value::UInt(c)]))
                        .collect(),
                ),
            ),
        ])
    }

    /// Rebuild a histogram from its [`to_value`](Self::to_value)
    /// rendering. The quantile fields are recomputed from the bucket
    /// counters, not trusted; the summary counters must be internally
    /// consistent (bucket counts summing to `count`) or the document is
    /// rejected.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let field = |name: &str| {
            v.get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("histogram missing integer '{name}'"))
        };
        let mut h = Self::new();
        h.count = field("count")?;
        h.sum = field("sum")?;
        h.max = field("max")?;
        let Some(Value::Array(buckets)) = v.get("buckets") else {
            return Err("histogram missing 'buckets' array".into());
        };
        let mut total = 0u64;
        for (n, pair) in buckets.iter().enumerate() {
            let Value::Array(pair) = pair else {
                return Err(format!("buckets[{n}] is not an [index, count] pair"));
            };
            let (Some(i), Some(c)) = (
                pair.first().and_then(Value::as_u64),
                pair.get(1).and_then(Value::as_u64),
            ) else {
                return Err(format!("buckets[{n}] is not an [index, count] pair"));
            };
            if (i as usize) >= N_BUCKETS {
                return Err(format!("buckets[{n}] index {i} out of range"));
            }
            h.counts[i as usize] += c;
            total += c;
        }
        if total != h.count {
            return Err(format!(
                "bucket counts sum to {total} but count says {}",
                h.count
            ));
        }
        Ok(h)
    }
}

// ---------------------------------------------------------------------
// Profiler trait
// ---------------------------------------------------------------------

/// Receives the engine's per-slot phase timings.
///
/// Mirrors [`SimObserver`](crate::SimObserver): the engine is generic
/// over its profiler and consults `Self::ENABLED` (a `const`) before
/// taking any timestamp, so under the default [`NullProfiler`] every
/// timing site monomorphizes to dead code — zero instructions, zero
/// clock reads, no RNG or behaviour change either way.
pub trait SimProfiler {
    /// Whether the engine should read clocks and report at all.
    const ENABLED: bool = true;

    /// One phase segment of the current slot took `elapsed_ns`. A phase
    /// whose guard is off this slot is simply never reported.
    fn record(&mut self, phase: Phase, elapsed_ns: u64);

    /// The whole slot took `elapsed_ns` (measured on the same timestamp
    /// chain as the phases, so the phase segments sum to it exactly).
    fn slot_end(&mut self, elapsed_ns: u64);
}

/// The default do-nothing profiler; `ENABLED = false` compiles all
/// timing out of the engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullProfiler;

impl SimProfiler for NullProfiler {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _phase: Phase, _elapsed_ns: u64) {}

    #[inline(always)]
    fn slot_end(&mut self, _elapsed_ns: u64) {}
}

/// `&mut P` profiles too, so a profiler can be lent to an engine and
/// inspected after the run without being consumed.
impl<P: SimProfiler> SimProfiler for &mut P {
    const ENABLED: bool = P::ENABLED;

    #[inline]
    fn record(&mut self, phase: Phase, elapsed_ns: u64) {
        (**self).record(phase, elapsed_ns);
    }

    #[inline]
    fn slot_end(&mut self, elapsed_ns: u64) {
        (**self).slot_end(elapsed_ns);
    }
}

// ---------------------------------------------------------------------
// PhaseProfiler
// ---------------------------------------------------------------------

/// The standard [`SimProfiler`]: one [`StreamingHistogram`] per
/// [`Phase`] (segment cost in ns) plus one for whole-slot cost, with
/// exact per-phase totals on the side.
///
/// Merging profilers from many runs (or many rayon workers) is
/// counter addition throughout, so the folded result is deterministic
/// whatever the parallelism.
#[derive(Clone, Debug, Default)]
pub struct PhaseProfiler {
    /// Per-phase segment-cost histograms, indexed by `Phase as usize`.
    phases: [StreamingHistogram; N_PHASES],
    /// Per-phase total nanoseconds (exact, not bucketed).
    totals: [u64; N_PHASES],
    /// Whole-slot cost histogram.
    slot: StreamingHistogram,
    /// Total nanoseconds across all recorded slots (exact).
    slot_total_ns: u64,
}

impl PhaseProfiler {
    /// An empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// The segment-cost histogram of `phase`.
    pub fn phase_hist(&self, phase: Phase) -> &StreamingHistogram {
        &self.phases[phase as usize]
    }

    /// Exact total nanoseconds spent in `phase`.
    pub fn phase_total_ns(&self, phase: Phase) -> u64 {
        self.totals[phase as usize]
    }

    /// Sum of all phase totals.
    pub fn phases_total_ns(&self) -> u64 {
        self.totals.iter().sum()
    }

    /// The whole-slot cost histogram.
    pub fn slot_hist(&self) -> &StreamingHistogram {
        &self.slot
    }

    /// Exact total nanoseconds across all recorded slots.
    pub fn slot_total_ns(&self) -> u64 {
        self.slot_total_ns
    }

    /// Slots recorded.
    pub fn slots(&self) -> u64 {
        self.slot.count
    }

    /// Fold `other` into `self`.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.phases.iter_mut().zip(&other.phases) {
            a.merge(b);
        }
        for (a, b) in self.totals.iter_mut().zip(&other.totals) {
            *a += *b;
        }
        self.slot.merge(&other.slot);
        self.slot_total_ns += other.slot_total_ns;
    }

    /// JSON rendering: the slot histogram plus one entry per phase
    /// (name, exact total, share of the slot total, histogram).
    pub fn to_value(&self) -> Value {
        let slot_total = self.slot_total_ns.max(1);
        Value::Object(vec![
            ("slots".into(), Value::UInt(self.slots())),
            ("slot_total_ns".into(), Value::UInt(self.slot_total_ns)),
            ("slot_ns".into(), self.slot.to_value()),
            (
                "phases".into(),
                Value::Array(
                    Phase::ALL
                        .iter()
                        .map(|&p| {
                            let total = self.phase_total_ns(p);
                            Value::Object(vec![
                                ("phase".into(), Value::Str(p.name().into())),
                                ("total_ns".into(), Value::UInt(total)),
                                (
                                    "share".into(),
                                    Value::Float(total as f64 / slot_total as f64),
                                ),
                                ("segment_ns".into(), self.phase_hist(p).to_value()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl SimProfiler for PhaseProfiler {
    #[inline]
    fn record(&mut self, phase: Phase, elapsed_ns: u64) {
        self.phases[phase as usize].record(elapsed_ns);
        self.totals[phase as usize] += elapsed_ns;
    }

    #[inline]
    fn slot_end(&mut self, elapsed_ns: u64) {
        self.slot.record(elapsed_ns);
        self.slot_total_ns += elapsed_ns;
    }
}

// ---------------------------------------------------------------------
// Counting allocator
// ---------------------------------------------------------------------

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

/// A [`GlobalAlloc`] wrapper around [`System`] that counts every
/// allocation and reallocation — the measurement half of the
/// allocation gate (`crates/bench/tests/alloc_gate.rs`), which asserts
/// the engine's hot path performs **zero** heap allocations per slot
/// after warmup.
///
/// Install it in a test binary:
///
/// ```ignore
/// #[global_allocator]
/// static A: ldcf_obs::telemetry::CountingAlloc = ldcf_obs::telemetry::CountingAlloc;
/// ```
///
/// Deallocations are deliberately not counted: the gate cares about
/// acquisition cost and allocator traffic, and frees always pair with
/// a counted alloc.
pub struct CountingAlloc;

impl CountingAlloc {
    /// Allocations (+ reallocations) since process start. Sample before
    /// and after a region; the difference is the region's count —
    /// meaningful only while no other thread allocates.
    pub fn allocations() -> u64 {
        ALLOC_CALLS.load(Ordering::Relaxed)
    }
}

// SAFETY: delegates verbatim to `System`, only bumping a relaxed
// counter on the allocating entry points.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_inverse_of_lo() {
        let mut prev = 0;
        for i in 0..N_BUCKETS {
            let lo = bucket_lo(i);
            assert_eq!(bucket_index(lo), i, "lo of bucket {i} maps back");
            if i > 0 {
                assert!(lo > prev, "bucket lows ascend at {i}");
            }
            prev = lo;
        }
        // Spot checks: exact region, boundaries, large values.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(15), 15);
        assert_eq!(bucket_index(16), 16);
        assert_eq!(bucket_index(u64::MAX), N_BUCKETS - 1);
        for v in [17u64, 100, 1_000, 123_456_789, 1 << 40] {
            let i = bucket_index(v);
            assert!(bucket_lo(i) <= v);
            if i + 1 < N_BUCKETS {
                assert!(v < bucket_lo(i + 1));
            }
        }
    }

    #[test]
    fn quantiles_exact_below_sixteen() {
        let mut h = StreamingHistogram::new();
        for v in [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 10] {
            h.record(v);
        }
        assert_eq!(h.p50(), Some(5));
        assert_eq!(h.quantile(1.0), Some(10));
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.max, 10);
        assert_eq!(h.mean(), Some(5.5));
    }

    #[test]
    fn quantiles_bounded_error_above_sixteen() {
        let mut h = StreamingHistogram::new();
        for v in 0..10_000u64 {
            h.record(v);
        }
        for (q, expect) in [(0.5, 5_000.0), (0.95, 9_500.0), (0.99, 9_900.0)] {
            let got = h.quantile(q).unwrap() as f64;
            let err = (got - expect).abs() / expect;
            assert!(err < 0.13, "q{q}: got {got}, want ~{expect} (err {err})");
        }
        assert_eq!(h.count, 10_000);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = StreamingHistogram::new();
        assert_eq!(h.p50(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.max, 0);
    }

    #[test]
    fn merge_equals_single_stream() {
        let values: Vec<u64> = (0..1000).map(|i| i * 37 % 5000).collect();
        let mut whole = StreamingHistogram::new();
        for &v in &values {
            whole.record(v);
        }
        let mut left = StreamingHistogram::new();
        let mut right = StreamingHistogram::new();
        for (i, &v) in values.iter().enumerate() {
            if i % 2 == 0 {
                left.record(v)
            } else {
                right.record(v)
            }
        }
        let mut merged = StreamingHistogram::new();
        merged.merge(&right);
        merged.merge(&left);
        assert_eq!(merged, whole, "merge is exact and order-independent");
    }

    #[test]
    fn histogram_roundtrips_through_value() {
        let mut h = StreamingHistogram::new();
        for v in [0u64, 1, 15, 16, 17, 100, 1_000_000, u64::MAX / 2] {
            h.record(v);
        }
        let back = StreamingHistogram::from_value(&h.to_value()).unwrap();
        assert_eq!(back, h);
        assert_eq!(back.p95(), h.p95());

        let empty = StreamingHistogram::new();
        assert_eq!(
            StreamingHistogram::from_value(&empty.to_value()).unwrap(),
            empty
        );
    }

    #[test]
    fn histogram_from_value_rejects_inconsistent_documents() {
        let mut h = StreamingHistogram::new();
        h.record(42);
        // Tamper: claim two samples while the buckets hold one.
        let Value::Object(mut fields) = h.to_value() else {
            unreachable!()
        };
        for (k, v) in &mut fields {
            if k == "count" {
                *v = Value::UInt(2);
            }
        }
        let err = StreamingHistogram::from_value(&Value::Object(fields)).unwrap_err();
        assert!(err.contains("sum to 1"), "err: {err}");
        assert!(StreamingHistogram::from_value(&Value::Null).is_err());
        // Out-of-range bucket index.
        let bad = Value::Object(vec![
            ("count".into(), Value::UInt(1)),
            ("sum".into(), Value::UInt(1)),
            ("max".into(), Value::UInt(1)),
            (
                "buckets".into(),
                Value::Array(vec![Value::Array(vec![
                    Value::UInt(10_000),
                    Value::UInt(1),
                ])]),
            ),
        ]);
        assert!(StreamingHistogram::from_value(&bad)
            .unwrap_err()
            .contains("out of range"));
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn null_profiler_is_disabled() {
        assert!(!NullProfiler::ENABLED);
        assert!(PhaseProfiler::ENABLED);
        assert!(<&mut PhaseProfiler as SimProfiler>::ENABLED);
    }

    #[test]
    fn phase_profiler_telescopes_and_merges() {
        let mut a = PhaseProfiler::new();
        a.record(Phase::Propose, 30);
        a.record(Phase::Mac, 50);
        a.record(Phase::Energy, 20);
        a.slot_end(100);
        let mut b = PhaseProfiler::new();
        b.record(Phase::Propose, 10);
        b.slot_end(10);
        a.merge(&b);
        assert_eq!(a.slots(), 2);
        assert_eq!(a.slot_total_ns(), 110);
        assert_eq!(a.phases_total_ns(), 110);
        assert_eq!(a.phase_total_ns(Phase::Propose), 40);
        assert_eq!(a.phase_hist(Phase::Propose).count, 2);
        let json = serde_json::to_string_pretty(&a.to_value()).unwrap();
        assert!(json.contains("\"propose\""));
        assert!(json.contains("slot_total_ns"));
    }

    #[test]
    fn counting_alloc_counter_is_monotone() {
        // The wrapper is not installed as the global allocator in unit
        // tests; assert the counter API shape only.
        let before = CountingAlloc::allocations();
        assert!(CountingAlloc::allocations() >= before);
    }
}
