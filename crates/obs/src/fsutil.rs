//! Small filesystem helpers shared by artefact writers.

use std::path::Path;

/// Write `bytes` to `path` atomically: write a sibling `.tmp` file,
/// then rename over the destination. Readers — and the next process to
/// scan the directory after a crash or a mid-write kill — observe
/// either the old content or the new, never a torn file.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_atomic_replaces_content_and_leaves_no_tmp() {
        let dir = std::env::temp_dir().join("ldcf-fsutil-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artefact.json");
        write_atomic(&path, b"one").unwrap();
        write_atomic(&path, b"two").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"two");
        assert!(!path.with_extension("tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
