//! Binary columnar trace format (`.events.bin`): compact, seekable,
//! stream-decodable slot-level event logs.
//!
//! JSONL traces are self-describing but cost ~60–90 bytes per event and
//! can only be consumed whole-file. This module defines a binary
//! container that stores the **same** [`SimEvent`] stream roughly an
//! order of magnitude smaller and supports bounded-memory iteration and
//! indexed slot-range seeks — the enabling layer for forensics over
//! 100k–1M-node runs.
//!
//! ## File layout
//!
//! ```text
//! magic            8 bytes  b"LDCFBIN1"
//! frame*           one per <= FRAME_EVENTS consecutive events
//! index            'I', frame count + per-frame (offset, slot range,
//!                  event count) as varints
//! trailer         20 bytes  index offset (u64 LE), index CRC32 (LE),
//!                           b"LDCFIDX1"
//! ```
//!
//! Each **frame** covers a run of consecutive events in emission order:
//!
//! ```text
//! 'F'              1 byte   frame marker
//! crc32            4 bytes  LE, over header varints + payload
//! header           varints: n_events, min_slot, max_slot, payload_len
//! payload          columnar event data (see below)
//! ```
//!
//! The payload is **columnar with per-event-kind blocks**: first a tag
//! stream (one byte per event, its kind id — this is what preserves the
//! exact interleaving of kinds within a slot), then the slot column
//! (zigzag varint deltas against the previous event's slot), then, for
//! each event kind present in ascending kind id, that kind's field
//! columns — each field a zigzag varint delta column against the
//! previous value *in the same column*. Delta coding makes slots
//! (non-decreasing), node ids (locally clustered) and packet ids
//! (mostly constant within a flood burst) almost free; the CRC covers
//! everything after itself, so any flipped byte in header or payload is
//! detected (CRC-32 catches all error bursts ≤ 32 bits) instead of
//! decoding into garbage events.
//!
//! The trailing index is what makes the format *seekable*: a reader
//! loads it in one seek, then visits only the frames whose slot range
//! overlaps a query — `experiments trace query` never touches the rest
//! of the file.

use crate::event::SimEvent;
use crate::observer::SimObserver;
use ldcf_net::{NodeId, PacketId};
use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Leading file magic of a binary trace.
pub const BIN_MAGIC: [u8; 8] = *b"LDCFBIN1";
/// Trailer magic closing a binary trace.
pub const IDX_MAGIC: [u8; 8] = *b"LDCFIDX1";
/// Events buffered per frame by default: large enough that per-frame
/// overhead (marker + CRC + header + index entry, ~25 bytes) vanishes,
/// small enough that a reader retains at most a few thousand decoded
/// events at a time.
pub const FRAME_EVENTS: usize = 4096;

const FRAME_MARKER: u8 = b'F';
const INDEX_MARKER: u8 = b'I';
const TRAILER_LEN: u64 = 20;
/// Sanity cap on a frame payload before the CRC has been verified, so a
/// corrupted length varint cannot trigger an absurd allocation.
const MAX_PAYLOAD: u64 = 1 << 26;
/// Sanity cap on the serialized index, likewise pre-CRC.
const MAX_INDEX: u64 = 1 << 26;

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Why a binary trace could not be written or read back.
#[derive(Debug)]
pub enum BinError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// The bytes are not a (healthy) binary trace: bad magic, CRC
    /// mismatch, truncated column, or an impossible field value.
    Corrupt(String),
}

impl fmt::Display for BinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinError::Io(e) => write!(f, "binlog i/o: {e}"),
            BinError::Corrupt(msg) => write!(f, "binlog corrupt: {msg}"),
        }
    }
}

impl std::error::Error for BinError {}

impl From<io::Error> for BinError {
    fn from(e: io::Error) -> Self {
        BinError::Io(e)
    }
}

fn corrupt(msg: impl Into<String>) -> BinError {
    BinError::Corrupt(msg.into())
}

// ---------------------------------------------------------------------
// CRC-32 (IEEE), table-driven, dependency-free
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// IEEE CRC-32 of `bytes` (the `cksum`/zlib polynomial).
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, bytes) ^ 0xFFFF_FFFF
}

fn crc32_update(state: u32, bytes: &[u8]) -> u32 {
    let mut c = state;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

// ---------------------------------------------------------------------
// Varint / zigzag primitives
// ---------------------------------------------------------------------

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, BinError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = bytes
            .get(*pos)
            .ok_or_else(|| corrupt("varint runs past the end of its column"))?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return Err(corrupt("varint overflows 64 bits"));
        }
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(corrupt("varint longer than 10 bytes"));
        }
    }
}

fn zigzag(d: i64) -> u64 {
    ((d << 1) ^ (d >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Append `value` as a zigzag delta against `prev`, updating `prev`.
fn put_delta(out: &mut Vec<u8>, prev: &mut u64, value: u64) {
    put_varint(out, zigzag(value.wrapping_sub(*prev) as i64));
    *prev = value;
}

/// Read the next zigzag delta and fold it into `prev`.
fn get_delta(bytes: &[u8], pos: &mut usize, prev: &mut u64) -> Result<u64, BinError> {
    let d = unzigzag(get_varint(bytes, pos)?);
    *prev = prev.wrapping_add(d as u64);
    Ok(*prev)
}

// ---------------------------------------------------------------------
// Event <-> (kind id, slot, field tuple) mapping
// ---------------------------------------------------------------------

/// Number of event kinds (tag ids `0..N_KINDS`).
const N_KINDS: usize = 16;
/// Largest non-slot field count of any kind.
const MAX_FIELDS: usize = 4;

/// Non-slot field count per kind id, in the same order as
/// [`SimEvent`]'s variants.
const FIELD_COUNT: [usize; N_KINDS] = [
    4, // TxAttempt: sender, receiver, packet, bypass_mac
    4, // Delivered: sender, receiver, packet, fresh
    4, // Overheard: sender, receiver, packet, fresh
    3, // LinkLoss: sender, receiver, packet
    3, // Collision
    3, // ReceiverBusy
    3, // Mistimed
    3, // Deferred
    2, // CoverageReached: packet, holders
    2, // SlotEnd: queued, active_nodes
    3, // BurstLoss
    1, // NodeCrashed: node
    1, // NodeRecovered: node
    1, // SourceRetry: packet
    3, // ScheduleSlot: node, period, offset
    2, // PacketInjected: node, packet
];

/// Stable kind id of an event (index into [`FIELD_COUNT`]).
fn kind_id(ev: &SimEvent) -> u8 {
    match ev {
        SimEvent::TxAttempt { .. } => 0,
        SimEvent::Delivered { .. } => 1,
        SimEvent::Overheard { .. } => 2,
        SimEvent::LinkLoss { .. } => 3,
        SimEvent::Collision { .. } => 4,
        SimEvent::ReceiverBusy { .. } => 5,
        SimEvent::Mistimed { .. } => 6,
        SimEvent::Deferred { .. } => 7,
        SimEvent::CoverageReached { .. } => 8,
        SimEvent::SlotEnd { .. } => 9,
        SimEvent::BurstLoss { .. } => 10,
        SimEvent::NodeCrashed { .. } => 11,
        SimEvent::NodeRecovered { .. } => 12,
        SimEvent::SourceRetry { .. } => 13,
        SimEvent::ScheduleSlot { .. } => 14,
        SimEvent::PacketInjected { .. } => 15,
    }
}

/// Decompose an event into its non-slot fields as `u64`s (bools as
/// 0/1), in the fixed per-kind order [`FIELD_COUNT`] documents.
fn fields_of(ev: &SimEvent) -> ([u64; MAX_FIELDS], usize) {
    let mut f = [0u64; MAX_FIELDS];
    let n = match *ev {
        SimEvent::TxAttempt {
            sender,
            receiver,
            packet,
            bypass_mac,
            ..
        } => {
            f[0] = sender.0 as u64;
            f[1] = receiver.0 as u64;
            f[2] = packet as u64;
            f[3] = bypass_mac as u64;
            4
        }
        SimEvent::Delivered {
            sender,
            receiver,
            packet,
            fresh,
            ..
        }
        | SimEvent::Overheard {
            sender,
            receiver,
            packet,
            fresh,
            ..
        } => {
            f[0] = sender.0 as u64;
            f[1] = receiver.0 as u64;
            f[2] = packet as u64;
            f[3] = fresh as u64;
            4
        }
        SimEvent::LinkLoss {
            sender,
            receiver,
            packet,
            ..
        }
        | SimEvent::Collision {
            sender,
            receiver,
            packet,
            ..
        }
        | SimEvent::ReceiverBusy {
            sender,
            receiver,
            packet,
            ..
        }
        | SimEvent::Mistimed {
            sender,
            receiver,
            packet,
            ..
        }
        | SimEvent::Deferred {
            sender,
            receiver,
            packet,
            ..
        }
        | SimEvent::BurstLoss {
            sender,
            receiver,
            packet,
            ..
        } => {
            f[0] = sender.0 as u64;
            f[1] = receiver.0 as u64;
            f[2] = packet as u64;
            3
        }
        SimEvent::CoverageReached {
            packet, holders, ..
        } => {
            f[0] = packet as u64;
            f[1] = holders as u64;
            2
        }
        SimEvent::SlotEnd {
            queued,
            active_nodes,
            ..
        } => {
            f[0] = queued;
            f[1] = active_nodes as u64;
            2
        }
        SimEvent::NodeCrashed { node, .. } | SimEvent::NodeRecovered { node, .. } => {
            f[0] = node.0 as u64;
            1
        }
        SimEvent::SourceRetry { packet, .. } => {
            f[0] = packet as u64;
            1
        }
        SimEvent::ScheduleSlot {
            node,
            period,
            offset,
            ..
        } => {
            f[0] = node.0 as u64;
            f[1] = period as u64;
            f[2] = offset as u64;
            3
        }
        SimEvent::PacketInjected { node, packet, .. } => {
            f[0] = node.0 as u64;
            f[1] = packet as u64;
            2
        }
    };
    (f, n)
}

fn node_field(v: u64, what: &str) -> Result<NodeId, BinError> {
    u32::try_from(v)
        .map(NodeId)
        .map_err(|_| corrupt(format!("{what} {v} exceeds u32")))
}

fn u32_field(v: u64, what: &str) -> Result<u32, BinError> {
    u32::try_from(v).map_err(|_| corrupt(format!("{what} {v} exceeds u32")))
}

fn packet_field(v: u64) -> Result<PacketId, BinError> {
    u32_field(v, "packet id")
}

/// Rebuild an event from its kind id, slot, and field tuple.
fn event_from(kind: u8, slot: u64, f: &[u64]) -> Result<SimEvent, BinError> {
    let sender = || node_field(f[0], "sender id");
    let receiver = || node_field(f[1], "receiver id");
    Ok(match kind {
        0 => SimEvent::TxAttempt {
            slot,
            sender: sender()?,
            receiver: receiver()?,
            packet: packet_field(f[2])?,
            bypass_mac: f[3] != 0,
        },
        1 => SimEvent::Delivered {
            slot,
            sender: sender()?,
            receiver: receiver()?,
            packet: packet_field(f[2])?,
            fresh: f[3] != 0,
        },
        2 => SimEvent::Overheard {
            slot,
            sender: sender()?,
            receiver: receiver()?,
            packet: packet_field(f[2])?,
            fresh: f[3] != 0,
        },
        3 => SimEvent::LinkLoss {
            slot,
            sender: sender()?,
            receiver: receiver()?,
            packet: packet_field(f[2])?,
        },
        4 => SimEvent::Collision {
            slot,
            sender: sender()?,
            receiver: receiver()?,
            packet: packet_field(f[2])?,
        },
        5 => SimEvent::ReceiverBusy {
            slot,
            sender: sender()?,
            receiver: receiver()?,
            packet: packet_field(f[2])?,
        },
        6 => SimEvent::Mistimed {
            slot,
            sender: sender()?,
            receiver: receiver()?,
            packet: packet_field(f[2])?,
        },
        7 => SimEvent::Deferred {
            slot,
            sender: sender()?,
            receiver: receiver()?,
            packet: packet_field(f[2])?,
        },
        8 => SimEvent::CoverageReached {
            slot,
            packet: packet_field(f[0])?,
            holders: u32_field(f[1], "holders")?,
        },
        9 => SimEvent::SlotEnd {
            slot,
            queued: f[0],
            active_nodes: u32_field(f[1], "active_nodes")?,
        },
        10 => SimEvent::BurstLoss {
            slot,
            sender: sender()?,
            receiver: receiver()?,
            packet: packet_field(f[2])?,
        },
        11 => SimEvent::NodeCrashed {
            slot,
            node: node_field(f[0], "node id")?,
        },
        12 => SimEvent::NodeRecovered {
            slot,
            node: node_field(f[0], "node id")?,
        },
        13 => SimEvent::SourceRetry {
            slot,
            packet: packet_field(f[0])?,
        },
        14 => SimEvent::ScheduleSlot {
            slot,
            node: node_field(f[0], "node id")?,
            period: u32_field(f[1], "period")?,
            offset: u32_field(f[2], "offset")?,
        },
        15 => SimEvent::PacketInjected {
            slot,
            node: node_field(f[0], "node id")?,
            packet: packet_field(f[1])?,
        },
        other => return Err(corrupt(format!("unknown event kind tag {other}"))),
    })
}

// ---------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------

/// One frame's entry in the trailing index: where it lives and which
/// slots it covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameMeta {
    /// Byte offset of the frame marker in the file.
    pub offset: u64,
    /// Smallest event slot in the frame.
    pub min_slot: u64,
    /// Largest event slot in the frame.
    pub max_slot: u64,
    /// Events stored in the frame.
    pub n_events: u64,
}

impl FrameMeta {
    /// Whether the frame can contain any event with `lo <= slot < hi`.
    pub fn overlaps(&self, lo: u64, hi: u64) -> bool {
        self.min_slot < hi && self.max_slot >= lo
    }
}

/// Encode `events` (non-empty) into the bytes of one frame.
fn encode_frame(events: &[SimEvent]) -> (Vec<u8>, FrameMeta) {
    debug_assert!(!events.is_empty());
    let mut min_slot = u64::MAX;
    let mut max_slot = 0u64;
    let mut counts = [0usize; N_KINDS];
    for ev in events {
        let s = ev.slot();
        min_slot = min_slot.min(s);
        max_slot = max_slot.max(s);
        counts[kind_id(ev) as usize] += 1;
    }

    let mut payload = Vec::with_capacity(events.len() * 8);
    // Tag stream: the exact kind interleaving, one byte per event.
    for ev in events {
        payload.push(kind_id(ev));
    }
    // Slot column: zigzag deltas against the previous event, starting
    // from the frame's min_slot.
    let mut prev = min_slot;
    for ev in events {
        put_delta(&mut payload, &mut prev, ev.slot());
    }
    // Per-kind field columns, each delta-coded within itself.
    for kind in 0..N_KINDS {
        if counts[kind] == 0 {
            continue;
        }
        for field in 0..FIELD_COUNT[kind] {
            let mut prev = 0u64;
            for ev in events {
                if kind_id(ev) as usize == kind {
                    let (f, _) = fields_of(ev);
                    put_delta(&mut payload, &mut prev, f[field]);
                }
            }
        }
    }

    let mut header = Vec::with_capacity(24);
    put_varint(&mut header, events.len() as u64);
    put_varint(&mut header, min_slot);
    put_varint(&mut header, max_slot);
    put_varint(&mut header, payload.len() as u64);

    let crc = crc32_update(crc32_update(0xFFFF_FFFF, &header), &payload) ^ 0xFFFF_FFFF;
    let mut frame = Vec::with_capacity(5 + header.len() + payload.len());
    frame.push(FRAME_MARKER);
    frame.extend_from_slice(&crc.to_le_bytes());
    frame.extend_from_slice(&header);
    frame.extend_from_slice(&payload);
    let meta = FrameMeta {
        offset: 0, // patched by the writer
        min_slot,
        max_slot,
        n_events: events.len() as u64,
    };
    (frame, meta)
}

/// Decode one frame read at `meta.offset` back into its events.
fn decode_frame<R: Read + Seek>(src: &mut R, meta: &FrameMeta) -> Result<Vec<SimEvent>, BinError> {
    src.seek(SeekFrom::Start(meta.offset))?;
    let mut marker = [0u8; 5];
    src.read_exact(&mut marker)?;
    if marker[0] != FRAME_MARKER {
        return Err(corrupt(format!(
            "expected frame marker at offset {}, found byte {:#04x}",
            meta.offset, marker[0]
        )));
    }
    let crc_stored = u32::from_le_bytes([marker[1], marker[2], marker[3], marker[4]]);

    // Header varints, read byte-at-a-time so we keep the exact bytes
    // for the CRC.
    let mut header = Vec::with_capacity(24);
    let read_varint = |src: &mut R, header: &mut Vec<u8>| -> Result<u64, BinError> {
        let start = header.len();
        loop {
            let mut b = [0u8; 1];
            src.read_exact(&mut b)?;
            header.push(b[0]);
            if b[0] & 0x80 == 0 {
                break;
            }
            if header.len() - start > 10 {
                return Err(corrupt("frame header varint longer than 10 bytes"));
            }
        }
        let mut pos = start;
        get_varint(header, &mut pos)
    };
    let n_events = read_varint(src, &mut header)?;
    let min_slot = read_varint(src, &mut header)?;
    let max_slot = read_varint(src, &mut header)?;
    let payload_len = read_varint(src, &mut header)?;
    if payload_len > MAX_PAYLOAD {
        return Err(corrupt(format!(
            "frame payload length {payload_len} is absurd"
        )));
    }
    if n_events == 0 || n_events > payload_len {
        return Err(corrupt(format!(
            "frame claims {n_events} events in {payload_len} payload bytes"
        )));
    }
    let mut payload = vec![0u8; payload_len as usize];
    src.read_exact(&mut payload)?;

    let crc = crc32_update(crc32_update(0xFFFF_FFFF, &header), &payload) ^ 0xFFFF_FFFF;
    if crc != crc_stored {
        return Err(corrupt(format!(
            "frame at offset {} fails its CRC (stored {crc_stored:#010x}, computed {crc:#010x})",
            meta.offset
        )));
    }

    let n = n_events as usize;
    let mut pos = 0usize;
    let tags = payload
        .get(..n)
        .ok_or_else(|| corrupt("tag stream truncated"))?
        .to_vec();
    pos += n;
    let mut counts = [0usize; N_KINDS];
    for &t in &tags {
        if (t as usize) >= N_KINDS {
            return Err(corrupt(format!("unknown event kind tag {t}")));
        }
        counts[t as usize] += 1;
    }

    let mut slots = Vec::with_capacity(n);
    let mut prev = min_slot;
    for _ in 0..n {
        slots.push(get_delta(&payload, &mut pos, &mut prev)?);
    }

    let mut columns: Vec<Vec<u64>> = vec![Vec::new(); N_KINDS * MAX_FIELDS];
    for kind in 0..N_KINDS {
        if counts[kind] == 0 {
            continue;
        }
        for field in 0..FIELD_COUNT[kind] {
            let col = &mut columns[kind * MAX_FIELDS + field];
            col.reserve(counts[kind]);
            let mut prev = 0u64;
            for _ in 0..counts[kind] {
                col.push(get_delta(&payload, &mut pos, &mut prev)?);
            }
        }
    }
    if pos != payload.len() {
        return Err(corrupt(format!(
            "frame payload has {} trailing bytes after its columns",
            payload.len() - pos
        )));
    }

    let mut cursors = [0usize; N_KINDS];
    let mut events = Vec::with_capacity(n);
    let mut fields = [0u64; MAX_FIELDS];
    for (i, &tag) in tags.iter().enumerate() {
        let kind = tag as usize;
        let at = cursors[kind];
        for (field, slot) in fields.iter_mut().enumerate().take(FIELD_COUNT[kind]) {
            *slot = columns[kind * MAX_FIELDS + field][at];
        }
        cursors[kind] += 1;
        let slot = slots[i];
        if slot < min_slot || slot > max_slot {
            return Err(corrupt(format!(
                "event slot {slot} outside the frame's declared range {min_slot}..={max_slot}"
            )));
        }
        events.push(event_from(tag, slot, &fields[..FIELD_COUNT[kind]])?);
    }
    Ok(events)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Streams events into a binary columnar trace (see the module docs for
/// the layout). Like [`crate::JsonlSink`], I/O errors are sticky: the
/// first error is kept, later writes are skipped, and
/// [`BinSink::into_result`] surfaces it after the run.
pub struct BinSink<W: Write> {
    out: BufWriter<W>,
    buf: Vec<SimEvent>,
    frame_events: usize,
    frames: Vec<FrameMeta>,
    offset: u64,
    events: u64,
    error: Option<io::Error>,
    finished: bool,
}

impl<W: Write> BinSink<W> {
    /// Wrap a writer; the file magic is written immediately.
    pub fn new(out: W) -> Self {
        Self::with_frame_events(out, FRAME_EVENTS)
    }

    /// Like [`BinSink::new`] with a custom frame size (tests use small
    /// frames to exercise multi-frame files cheaply).
    pub fn with_frame_events(out: W, frame_events: usize) -> Self {
        let mut sink = Self {
            out: BufWriter::new(out),
            buf: Vec::with_capacity(frame_events.max(1)),
            frame_events: frame_events.max(1),
            frames: Vec::new(),
            offset: 0,
            events: 0,
            error: None,
            finished: false,
        };
        sink.write_all(&BIN_MAGIC);
        sink
    }

    /// Events accepted so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Bytes written so far (the final file size once finished).
    pub fn bytes(&self) -> u64 {
        self.offset
    }

    fn write_all(&mut self, bytes: &[u8]) {
        if self.error.is_some() {
            return;
        }
        match self.out.write_all(bytes) {
            Ok(()) => self.offset += bytes.len() as u64,
            Err(e) => self.error = Some(e),
        }
    }

    fn flush_frame(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let (bytes, mut meta) = encode_frame(&self.buf);
        meta.offset = self.offset;
        self.write_all(&bytes);
        if self.error.is_none() {
            self.frames.push(meta);
        }
        self.buf.clear();
    }

    fn finalize(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.flush_frame();

        let mut index = Vec::with_capacity(2 + self.frames.len() * 8);
        index.push(INDEX_MARKER);
        put_varint(&mut index, self.frames.len() as u64);
        let (mut prev_off, mut prev_min) = (0u64, 0u64);
        for f in &self.frames {
            put_delta(&mut index, &mut prev_off, f.offset);
            put_delta(&mut index, &mut prev_min, f.min_slot);
            put_varint(&mut index, f.max_slot - f.min_slot);
            put_varint(&mut index, f.n_events);
        }
        let index_offset = self.offset;
        let index_crc = crc32(&index);
        self.write_all(&index);

        let mut trailer = Vec::with_capacity(TRAILER_LEN as usize);
        trailer.extend_from_slice(&index_offset.to_le_bytes());
        trailer.extend_from_slice(&index_crc.to_le_bytes());
        trailer.extend_from_slice(&IDX_MAGIC);
        self.write_all(&trailer);

        if self.error.is_none() {
            if let Err(e) = self.out.flush() {
                self.error = Some(e);
            }
        }
    }

    /// Finish the file (if [`SimObserver::on_finish`] has not already)
    /// and surface the first I/O error together with the writer.
    pub fn into_result(mut self) -> io::Result<W> {
        self.finalize();
        if let Some(e) = self.error {
            return Err(e);
        }
        self.out
            .into_inner()
            .map_err(|e| io::Error::other(e.to_string()))
    }
}

impl<W: Write> SimObserver for BinSink<W> {
    fn on_event(&mut self, event: &SimEvent) {
        if self.error.is_some() || self.finished {
            return;
        }
        self.buf.push(*event);
        self.events += 1;
        if self.buf.len() >= self.frame_events {
            self.flush_frame();
        }
    }

    fn on_finish(&mut self) {
        self.finalize();
    }
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

/// A parsed binary trace: the index is loaded eagerly (a few bytes per
/// frame), event payloads lazily — one frame at a time.
pub struct BinReader<R: Read + Seek> {
    src: R,
    frames: Vec<FrameMeta>,
}

impl BinReader<BufReader<File>> {
    /// Open a binary trace file.
    pub fn open_path(path: &Path) -> Result<Self, BinError> {
        Self::new(BufReader::new(File::open(path)?))
    }
}

impl<R: Read + Seek> BinReader<R> {
    /// Validate magic + trailer + index of a binary trace.
    pub fn new(mut src: R) -> Result<Self, BinError> {
        let len = src.seek(SeekFrom::End(0))?;
        if len < BIN_MAGIC.len() as u64 + 2 + TRAILER_LEN {
            return Err(corrupt(format!(
                "{len} bytes is too short for a binary trace"
            )));
        }
        src.seek(SeekFrom::Start(0))?;
        let mut magic = [0u8; 8];
        src.read_exact(&mut magic)?;
        if magic != BIN_MAGIC {
            return Err(corrupt("missing LDCFBIN1 file magic"));
        }

        src.seek(SeekFrom::End(-(TRAILER_LEN as i64)))?;
        let mut trailer = [0u8; TRAILER_LEN as usize];
        src.read_exact(&mut trailer)?;
        if trailer[12..] != IDX_MAGIC {
            return Err(corrupt("missing LDCFIDX1 trailer magic"));
        }
        let index_offset = u64::from_le_bytes(trailer[..8].try_into().expect("8 bytes"));
        let index_crc = u32::from_le_bytes(trailer[8..12].try_into().expect("4 bytes"));
        let index_len = (len - TRAILER_LEN)
            .checked_sub(index_offset)
            .filter(|l| (2..=MAX_INDEX).contains(l))
            .ok_or_else(|| corrupt(format!("index offset {index_offset} is out of bounds")))?;

        src.seek(SeekFrom::Start(index_offset))?;
        let mut index = vec![0u8; index_len as usize];
        src.read_exact(&mut index)?;
        if crc32(&index) != index_crc {
            return Err(corrupt("index fails its CRC"));
        }
        if index[0] != INDEX_MARKER {
            return Err(corrupt("index marker missing"));
        }

        let mut pos = 1usize;
        let n_frames = get_varint(&index, &mut pos)?;
        if n_frames > index_len {
            return Err(corrupt(format!("index claims {n_frames} frames")));
        }
        let mut frames = Vec::with_capacity(n_frames as usize);
        let (mut prev_off, mut prev_min) = (0u64, 0u64);
        for _ in 0..n_frames {
            let offset = get_delta(&index, &mut pos, &mut prev_off)?;
            let min_slot = get_delta(&index, &mut pos, &mut prev_min)?;
            let span = get_varint(&index, &mut pos)?;
            let n_events = get_varint(&index, &mut pos)?;
            if offset < BIN_MAGIC.len() as u64 || offset >= index_offset {
                return Err(corrupt(format!("frame offset {offset} is out of bounds")));
            }
            frames.push(FrameMeta {
                offset,
                min_slot,
                max_slot: min_slot + span,
                n_events,
            });
        }
        if pos != index.len() {
            return Err(corrupt("index has trailing bytes"));
        }
        Ok(Self { src, frames })
    }

    /// Per-frame index entries (offset, slot range, event count).
    pub fn frames(&self) -> &[FrameMeta] {
        &self.frames
    }

    /// Total events in the trace, from the index alone.
    pub fn n_events(&self) -> u64 {
        self.frames.iter().map(|f| f.n_events).sum()
    }

    /// Smallest and largest event slot, from the index alone (`None`
    /// for an empty trace).
    pub fn slot_span(&self) -> Option<(u64, u64)> {
        let min = self.frames.iter().map(|f| f.min_slot).min()?;
        let max = self.frames.iter().map(|f| f.max_slot).max()?;
        Some((min, max))
    }

    /// Iterate every event in emission order, decoding one frame at a
    /// time (peak retained events bounded by the frame size).
    pub fn events(self) -> BinEvents<R> {
        let frames = self.frames.clone();
        BinEvents::new(self.src, frames, None)
    }

    /// Iterate only events with `lo <= slot < hi`, using the index to
    /// skip every frame whose slot range misses the window. Returns the
    /// iterator and the number of frames it will actually decode.
    pub fn events_in(self, lo: u64, hi: u64) -> (BinEvents<R>, usize) {
        let frames: Vec<FrameMeta> = self
            .frames
            .iter()
            .filter(|f| f.overlaps(lo, hi))
            .copied()
            .collect();
        let scanned = frames.len();
        (BinEvents::new(self.src, frames, Some((lo, hi))), scanned)
    }
}

/// Lazy event iterator over (a subset of) a binary trace's frames.
pub struct BinEvents<R: Read + Seek> {
    src: R,
    frames: std::vec::IntoIter<FrameMeta>,
    range: Option<(u64, u64)>,
    current: std::vec::IntoIter<SimEvent>,
    failed: bool,
}

impl<R: Read + Seek> BinEvents<R> {
    fn new(src: R, frames: Vec<FrameMeta>, range: Option<(u64, u64)>) -> Self {
        Self {
            src,
            frames: frames.into_iter(),
            range,
            current: Vec::new().into_iter(),
            failed: false,
        }
    }
}

impl<R: Read + Seek> Iterator for BinEvents<R> {
    type Item = Result<SimEvent, BinError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        loop {
            for ev in self.current.by_ref() {
                match self.range {
                    Some((lo, hi)) if ev.slot() < lo || ev.slot() >= hi => continue,
                    _ => return Some(Ok(ev)),
                }
            }
            let meta = self.frames.next()?;
            match decode_frame(&mut self.src, &meta) {
                Ok(events) => {
                    if events.len() as u64 != meta.n_events {
                        self.failed = true;
                        return Some(Err(corrupt(format!(
                            "frame at offset {} decoded {} events, index says {}",
                            meta.offset,
                            events.len(),
                            meta.n_events
                        ))));
                    }
                    self.current = events.into_iter();
                }
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample_events(n: usize) -> Vec<SimEvent> {
        let mut events = Vec::new();
        for node in 0..4u32 {
            events.push(SimEvent::ScheduleSlot {
                slot: 0,
                node: NodeId(node),
                period: 10,
                offset: node % 10,
            });
        }
        for i in 0..n as u64 {
            events.push(SimEvent::TxAttempt {
                slot: i,
                sender: NodeId((i % 4) as u32),
                receiver: NodeId(((i + 1) % 4) as u32),
                packet: (i % 3) as PacketId,
                bypass_mac: i % 2 == 0,
            });
            events.push(SimEvent::Delivered {
                slot: i,
                sender: NodeId((i % 4) as u32),
                receiver: NodeId(((i + 1) % 4) as u32),
                packet: (i % 3) as PacketId,
                fresh: i % 5 != 0,
            });
            events.push(SimEvent::SlotEnd {
                slot: i,
                queued: i % 7,
                active_nodes: 4,
            });
        }
        events
    }

    fn write_trace(events: &[SimEvent], frame_events: usize) -> Vec<u8> {
        let mut sink = BinSink::with_frame_events(Vec::new(), frame_events);
        for ev in events {
            sink.on_event(ev);
        }
        sink.on_finish();
        assert_eq!(sink.events(), events.len() as u64);
        sink.into_result().unwrap()
    }

    #[test]
    fn crc32_known_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn varint_roundtrips_extremes() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
        for d in [0i64, -1, 1, i64::MIN, i64::MAX] {
            assert_eq!(unzigzag(zigzag(d)), d);
        }
    }

    #[test]
    fn roundtrip_across_frame_sizes() {
        let events = sample_events(100);
        for frame_events in [1, 7, 64, 4096] {
            let bytes = write_trace(&events, frame_events);
            let reader = BinReader::new(Cursor::new(&bytes)).unwrap();
            assert_eq!(reader.n_events(), events.len() as u64);
            let back: Vec<SimEvent> = reader
                .events()
                .collect::<Result<_, _>>()
                .unwrap_or_else(|e| panic!("frame size {frame_events}: {e}"));
            assert_eq!(back, events, "frame size {frame_events}");
        }
    }

    #[test]
    fn empty_trace_roundtrips() {
        let bytes = write_trace(&[], 16);
        let reader = BinReader::new(Cursor::new(&bytes)).unwrap();
        assert_eq!(reader.n_events(), 0);
        assert_eq!(reader.slot_span(), None);
        assert_eq!(reader.events().count(), 0);
    }

    #[test]
    fn slot_range_query_uses_the_index() {
        let events = sample_events(100);
        let bytes = write_trace(&events, 16);
        let reader = BinReader::new(Cursor::new(&bytes)).unwrap();
        let total_frames = reader.frames().len();
        let (iter, scanned) = reader.events_in(40, 50);
        let got: Vec<SimEvent> = iter.collect::<Result<_, _>>().unwrap();
        let expect: Vec<SimEvent> = events
            .iter()
            .filter(|e| (40..50).contains(&e.slot()))
            .copied()
            .collect();
        assert_eq!(got, expect);
        assert!(
            scanned < total_frames,
            "query decoded {scanned}/{total_frames} frames — the index did not help"
        );
    }

    #[test]
    fn every_flipped_byte_is_detected() {
        let events = sample_events(40);
        let bytes = write_trace(&events, 16);
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0xFF;
            let outcome: Result<Vec<SimEvent>, BinError> =
                BinReader::new(Cursor::new(&bad)).and_then(|r| r.events().collect());
            assert!(
                outcome.is_err(),
                "flipping byte {i} of {} went undetected",
                bytes.len()
            );
        }
    }

    #[test]
    fn all_event_kinds_roundtrip() {
        let s = NodeId(3);
        let r = NodeId(7);
        let events = vec![
            SimEvent::TxAttempt {
                slot: 1,
                sender: s,
                receiver: r,
                packet: 2,
                bypass_mac: true,
            },
            SimEvent::Delivered {
                slot: 1,
                sender: s,
                receiver: r,
                packet: 2,
                fresh: true,
            },
            SimEvent::Overheard {
                slot: 2,
                sender: s,
                receiver: r,
                packet: 0,
                fresh: false,
            },
            SimEvent::LinkLoss {
                slot: 3,
                sender: s,
                receiver: r,
                packet: 1,
            },
            SimEvent::Collision {
                slot: 4,
                sender: s,
                receiver: r,
                packet: 1,
            },
            SimEvent::ReceiverBusy {
                slot: 5,
                sender: s,
                receiver: r,
                packet: 1,
            },
            SimEvent::Mistimed {
                slot: 6,
                sender: s,
                receiver: r,
                packet: 3,
            },
            SimEvent::Deferred {
                slot: 7,
                sender: s,
                receiver: r,
                packet: 2,
            },
            SimEvent::CoverageReached {
                slot: 8,
                packet: 3,
                holders: 99,
            },
            SimEvent::SlotEnd {
                slot: 9,
                queued: 42,
                active_nodes: 5,
            },
            SimEvent::BurstLoss {
                slot: 10,
                sender: s,
                receiver: r,
                packet: 1,
            },
            SimEvent::NodeCrashed { slot: 11, node: r },
            SimEvent::NodeRecovered { slot: 12, node: r },
            SimEvent::SourceRetry {
                slot: 13,
                packet: 0,
            },
            SimEvent::ScheduleSlot {
                slot: 0,
                node: s,
                period: 100,
                offset: 37,
            },
            SimEvent::PacketInjected {
                slot: 14,
                node: s,
                packet: 4,
            },
        ];
        let bytes = write_trace(&events, 5);
        let back: Vec<SimEvent> = BinReader::new(Cursor::new(&bytes))
            .unwrap()
            .events()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn binary_is_much_smaller_than_jsonl() {
        let events = sample_events(500);
        let bytes = write_trace(&events, FRAME_EVENTS);
        let jsonl: usize = events
            .iter()
            .map(|e| serde_json::to_string(e).unwrap().len() + 1)
            .sum();
        assert!(
            jsonl >= 4 * bytes.len(),
            "compression ratio {:.2}x is below 4x",
            jsonl as f64 / bytes.len() as f64
        );
    }
}
