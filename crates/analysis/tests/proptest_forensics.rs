//! Property-based contract of the forensics layer against the *real*
//! engine: on arbitrary small duty-cycled topologies, the reconstructed
//! dissemination tree is a spanning tree of the informed set (every
//! informed node except the source has exactly one fresh-copy parent,
//! informed strictly before it), every node's five-way delay
//! attribution sums exactly to its flooding delay, and the tree-derived
//! mean flooding delay matches `SimReport` bit-for-bit.
//!
//! Also hosts the forced-duplicate regression: a protocol that keeps
//! retransmitting to an already-informed receiver produces
//! `Delivered { fresh: false }` events, which must count as duplicates
//! but never create tree edges.

use ldcf_analysis::ForensicsReport;
use ldcf_net::{LinkQuality, NeighborTable, NodeId, Topology, WorkingSchedule, SOURCE};
use ldcf_protocols::{Dbao, OpportunisticFlooding};
use ldcf_sim::{Engine, FloodingProtocol, Injection, SimConfig, SimState, TxIntent, VecObserver};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random connected topology of `n` nodes (random tree plus chords).
fn arb_topology() -> impl Strategy<Value = Topology> {
    (3usize..12, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut topo = Topology::empty(n);
        for i in 1..n {
            let parent = rng.random_range(0..i);
            let q = LinkQuality::new(rng.random_range(0.4..=1.0));
            topo.add_edge(NodeId::from(parent), NodeId::from(i), q, q);
        }
        for _ in 0..n / 2 {
            let a = rng.random_range(0..n);
            let b = rng.random_range(0..n);
            if a != b && !topo.are_neighbors(NodeId::from(a), NodeId::from(b)) {
                let q = LinkQuality::new(rng.random_range(0.4..=1.0));
                topo.add_edge(NodeId::from(a), NodeId::from(b), q, q);
            }
        }
        topo
    })
}

fn arb_cfg() -> impl Strategy<Value = SimConfig> {
    (2u32..8, 1u32..4, 1u32..4, any::<u64>(), any::<bool>()).prop_map(
        |(period, active, n_packets, seed, mistimed)| SimConfig {
            period,
            active_per_period: active.min(period),
            n_packets,
            coverage: 1.0,
            max_slots: 20_000,
            seed,
            mistiming_prob: if mistimed { 0.1 } else { 0.0 },
        },
    )
}

/// Run one traced flood and check every forensic invariant against the
/// engine's own report.
fn check_forensics<P: FloodingProtocol>(
    topo: &Topology,
    cfg: &SimConfig,
    protocol: P,
) -> Result<(), TestCaseError> {
    let engine =
        Engine::new(topo.clone(), cfg.clone(), protocol).with_observer(VecObserver::default());
    let (report, _, obs) = engine.run_traced();
    let forensics = ForensicsReport::from_events(&obs.events)
        .map_err(|e| TestCaseError::fail(e.to_string()))?;

    // Hard checks: exact attribution, one parent per informed node,
    // parents informed first. (Heuristic MAC protocols: the Corollary 1
    // bound is advisory, so `is_clean` is exactly these.)
    prop_assert!(
        forensics.is_clean(),
        "theory violations: {:?}",
        forensics.violations
    );

    prop_assert_eq!(
        forensics.mean_flooding_delay,
        report.mean_flooding_delay(),
        "tree-derived mean flooding delay must match the engine"
    );

    for (pf, st) in forensics.packets.iter().zip(&report.packets) {
        // Spanning: the tree's node set is exactly the engine's fresh
        // receptions, each node appearing once.
        prop_assert_eq!(
            pf.nodes.len() as u32,
            st.deliveries + st.overhears,
            "packet {}: tree must span the informed set",
            pf.packet
        );
        let mut seen = std::collections::HashSet::new();
        for nf in &pf.nodes {
            prop_assert!(nf.node != SOURCE, "source can never be informed");
            prop_assert!(seen.insert(nf.node), "node {} informed twice", nf.node);

            // Exactly one parent, informed strictly before the child
            // (the source is ready at the push slot).
            if nf.parent == SOURCE {
                prop_assert!(nf.informed_at >= pf.pushed_at);
            } else {
                let parent = pf
                    .nodes
                    .iter()
                    .find(|o| o.node == nf.parent)
                    .expect("parent is in the tree (no OrphanNode fired)");
                prop_assert!(
                    parent.informed_at < nf.informed_at,
                    "parent {} informed at {}, child {} at {}",
                    parent.node,
                    parent.informed_at,
                    nf.node,
                    nf.informed_at
                );
            }

            // Exact five-way attribution, per node.
            prop_assert_eq!(
                nf.attribution.total(),
                nf.delay,
                "packet {} node {}: attribution must sum to the delay",
                pf.packet,
                nf.node
            );
            prop_assert_eq!(nf.delay, nf.informed_at - pf.pushed_at);
        }
    }
    Ok(())
}

/// Two concurrent origins: the default source plus the hop-farthest
/// node, packets round-robin between them (the scenario subsystem's
/// `multi-source` workload). The forensic invariants are the same as
/// the single-source case, but rooted per packet at *its* origin: the
/// origin never appears in its own packet's tree — while `SOURCE` may
/// legitimately be informed of a packet originated elsewhere — and the
/// tree root's parent is the origin, not `SOURCE`.
fn check_forensics_two_sources<P: FloodingProtocol>(
    topo: &Topology,
    cfg: &SimConfig,
    protocol: P,
) -> Result<(), TestCaseError> {
    let dist = topo.hop_distances(SOURCE);
    let far = (0..topo.n_nodes())
        .map(NodeId::from)
        .filter(|n| *n != SOURCE && dist[n.index()] != u32::MAX)
        .max_by_key(|n| (dist[n.index()], std::cmp::Reverse(n.0)))
        .expect("connected topology has a farthest node");
    let origins = [SOURCE, far];
    let plan: Vec<Injection> = (0..cfg.n_packets)
        .map(|p| Injection {
            origin: origins[p as usize % 2],
            slot: 0,
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xA5A5);
    let schedules = NeighborTable::new(
        (0..topo.n_nodes())
            .map(|_| WorkingSchedule::multi_random(cfg.period, cfg.active_per_period, &mut rng))
            .collect(),
    );
    let engine = Engine::with_injections(topo.clone(), cfg.clone(), schedules, &plan, protocol)
        .with_observer(VecObserver::default());
    let (report, _, obs) = engine.run_traced();
    let forensics = ForensicsReport::from_events(&obs.events)
        .map_err(|e| TestCaseError::fail(e.to_string()))?;

    prop_assert!(
        forensics.is_clean(),
        "theory violations: {:?}",
        forensics.violations
    );
    prop_assert_eq!(
        forensics.mean_flooding_delay,
        report.mean_flooding_delay(),
        "tree-derived mean flooding delay must match the engine"
    );

    for (pf, st) in forensics.packets.iter().zip(&report.packets) {
        let origin = origins[pf.packet as usize % 2];
        prop_assert_eq!(pf.origin, origin, "packet {} origin", pf.packet);
        prop_assert_eq!(
            pf.nodes.len() as u32,
            st.deliveries + st.overhears,
            "packet {}: tree must span the informed set",
            pf.packet
        );
        let mut seen = std::collections::HashSet::new();
        for nf in &pf.nodes {
            prop_assert!(
                nf.node != origin,
                "packet {}: its origin {} can never be informed of it",
                pf.packet,
                origin
            );
            prop_assert!(seen.insert(nf.node), "node {} informed twice", nf.node);
            if nf.parent == origin {
                prop_assert!(nf.informed_at >= pf.pushed_at);
            } else {
                let parent = pf
                    .nodes
                    .iter()
                    .find(|o| o.node == nf.parent)
                    .expect("parent is in the tree (no OrphanNode fired)");
                prop_assert!(parent.informed_at < nf.informed_at);
            }
            prop_assert_eq!(
                nf.attribution.total(),
                nf.delay,
                "packet {} node {}: attribution must sum to the delay",
                pf.packet,
                nf.node
            );
            prop_assert_eq!(nf.delay, nf.informed_at - pf.pushed_at);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dbao_floods_reconstruct_to_spanning_trees(
        topo in arb_topology(),
        cfg in arb_cfg(),
    ) {
        check_forensics(&topo, &cfg, Dbao::new())?;
    }

    #[test]
    fn opportunistic_floods_reconstruct_to_spanning_trees(
        topo in arb_topology(),
        cfg in arb_cfg(),
    ) {
        check_forensics(&topo, &cfg, OpportunisticFlooding::new())?;
    }

    #[test]
    fn two_source_dbao_floods_attribute_per_origin(
        topo in arb_topology(),
        cfg in arb_cfg(),
    ) {
        check_forensics_two_sources(&topo, &cfg, Dbao::new())?;
    }

    #[test]
    fn two_source_opportunistic_floods_attribute_per_origin(
        topo in arb_topology(),
        cfg in arb_cfg(),
    ) {
        check_forensics_two_sources(&topo, &cfg, OpportunisticFlooding::new())?;
    }
}

/// A pathological protocol: the source keeps unicasting packet 0 to
/// node 1 at its every active slot, even after node 1 holds it. Every
/// reception past the first is a `Delivered { fresh: false }`.
struct DuplicateSpammer;

impl FloodingProtocol for DuplicateSpammer {
    fn name(&self) -> &str {
        "DUP-SPAM"
    }

    fn propose(&mut self, state: &SimState, out: &mut Vec<TxIntent>) {
        if state.is_active(NodeId(1)) {
            out.push(TxIntent {
                sender: SOURCE,
                receiver: NodeId(1),
                packet: 0,
                backoff_rank: 0,
                bypass_mac: false,
            });
        }
    }
}

/// Forced-duplicate regression (ISSUE 2 satellite): duplicates are
/// counted — they cost energy — but never create tree edges, so the
/// dissemination tree keeps exactly one parent per informed node.
#[test]
fn forced_duplicates_count_but_never_create_tree_edges() {
    // Node 2 hangs off node 1 and is never served, so coverage is never
    // reached and the spammer runs for the full `max_slots`.
    let mut topo = Topology::empty(3);
    topo.add_edge(
        SOURCE,
        NodeId(1),
        LinkQuality::PERFECT,
        LinkQuality::PERFECT,
    );
    topo.add_edge(
        NodeId(1),
        NodeId(2),
        LinkQuality::PERFECT,
        LinkQuality::PERFECT,
    );
    let cfg = SimConfig {
        period: 2,
        active_per_period: 2,
        n_packets: 1,
        coverage: 1.0,
        max_slots: 40,
        seed: 11,
        mistiming_prob: 0.0,
    };
    let engine = Engine::new(topo, cfg, DuplicateSpammer).with_observer(VecObserver::default());
    let (report, _, obs) = engine.run_traced();
    let forensics = ForensicsReport::from_events(&obs.events).unwrap();

    assert!(forensics.is_clean(), "{:?}", forensics.violations);
    // Every delivery after the first is a duplicate; with full duty and
    // perfect links that is one per remaining slot.
    assert!(
        forensics.duplicate_deliveries >= 10,
        "expected a pile of duplicates, got {}",
        forensics.duplicate_deliveries
    );
    // ... none of which added a tree edge: node 1 has exactly one
    // parent and node 2 was never informed.
    let pf = &forensics.packets[0];
    assert_eq!(pf.nodes.len(), 1, "only node 1 is informed");
    assert_eq!(pf.nodes[0].node, NodeId(1));
    assert_eq!(pf.nodes[0].parent, SOURCE);
    assert_eq!(pf.covered_at, None, "node 2 never informed");
    // The engine agrees: exactly one fresh delivery.
    assert_eq!(report.packets[0].deliveries, 1);
    assert_eq!(
        forensics.duplicate_deliveries + 1,
        report.transmissions - report.transmission_failures,
        "every successful transmission is the fresh copy or a duplicate"
    );
}
