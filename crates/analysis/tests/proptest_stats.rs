//! Property-based contract of the streaming statistics primitives the
//! campaign reducer is built on: merging per-shard [`OnlineStats`]
//! partials is equivalent to a single-pass fold over the whole sample
//! (any partition, including empty shards), the Student-t 95% CI
//! actually covers a known population mean at its nominal rate, and
//! the exact sign test behaves like the textbook binomial it is.

use ldcf_analysis::stats::{sign_test_two_sided, t_critical_975};
use ldcf_analysis::OnlineStats;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `a ≈ b` under mixed absolute/relative tolerance — Chan's merge is
/// algebraically the single-pass fold but floating-point reassociation
/// moves the low bits.
fn close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
}

fn fold(xs: &[f64]) -> OnlineStats {
    let mut s = OnlineStats::new();
    for &x in xs {
        s.record(x);
    }
    s
}

/// Split `data` into `n_cuts`-ish random chunks (some possibly empty)
/// using a seeded RNG, so every partition is reproducible.
fn random_partition(data: &[f64], seed: u64, n_cuts: usize) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cuts: Vec<usize> = (0..n_cuts)
        .map(|_| rng.random_range(0..=data.len()))
        .collect();
    cuts.sort_unstable();
    let mut chunks = Vec::with_capacity(n_cuts + 1);
    let mut start = 0;
    for &c in &cuts {
        chunks.push(data[start..c].to_vec());
        start = c;
    }
    chunks.push(data[start..].to_vec());
    chunks
}

proptest! {
    /// Merging shard partials in partition order reproduces the
    /// single-pass fold: count/min/max exactly, mean and M2 within
    /// float reassociation tolerance — under ANY partition, empty
    /// shards included.
    #[test]
    fn merged_partials_equal_a_single_pass(
        data in prop::collection::vec(-1.0e6f64..1.0e6, 1..200),
        seed in any::<u64>(),
        n_cuts in 0usize..12,
    ) {
        let whole = fold(&data);
        let mut merged = OnlineStats::new();
        for chunk in random_partition(&data, seed, n_cuts) {
            merged.merge(&fold(&chunk));
        }
        prop_assert_eq!(merged.count, whole.count);
        prop_assert_eq!(merged.min, whole.min);
        prop_assert_eq!(merged.max, whole.max);
        prop_assert!(
            close(merged.mean, whole.mean, 1e-9),
            "mean: merged {} vs single-pass {}",
            merged.mean,
            whole.mean
        );
        prop_assert!(
            close(merged.m2, whole.m2, 1e-6),
            "m2: merged {} vs single-pass {}",
            merged.m2,
            whole.m2
        );
    }

    /// Merge is associative up to the same tolerance: left-heavy and
    /// right-heavy merge trees over three chunks agree.
    #[test]
    fn merge_is_associative(
        a in prop::collection::vec(-1.0e3f64..1.0e3, 0..40),
        b in prop::collection::vec(-1.0e3f64..1.0e3, 0..40),
        c in prop::collection::vec(-1.0e3f64..1.0e3, 1..40),
    ) {
        let (sa, sb, sc) = (fold(&a), fold(&b), fold(&c));
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(left.count, right.count);
        prop_assert!(close(left.mean, right.mean, 1e-9));
        prop_assert!(close(left.m2, right.m2, 1e-6));
    }

    /// The sign test is a probability, symmetric in its arguments, and
    /// equal to 1 when the sides balance.
    #[test]
    fn sign_test_is_a_symmetric_p_value(pos in 0u64..400, neg in 0u64..400) {
        prop_assume!(pos + neg > 0);
        let p = sign_test_two_sided(pos, neg).unwrap();
        prop_assert!((0.0..=1.0).contains(&p), "p = {p}");
        prop_assert_eq!(
            p.to_bits(),
            sign_test_two_sided(neg, pos).unwrap().to_bits(),
            "two-sided test must not care which side is which"
        );
        if pos == neg {
            prop_assert!((p - 1.0).abs() < 1e-12, "balanced split: p = {p}");
        }
    }
}

/// The 95% CI covers the true mean of a known synthetic population at
/// (about) its nominal rate. 400 independent intervals of n = 25
/// approximately-normal samples: the binomial 3σ band around 0.95
/// is ~[0.917, 0.983]; we accept [0.90, 1.0] to keep the fixed-seed
/// test comfortably deterministic while still catching a broken t
/// table or SEM (which produce coverages far outside it).
#[test]
fn ci95_covers_a_known_mean_at_its_nominal_rate() {
    const TRUE_MEAN: f64 = 42.0;
    let mut rng = StdRng::seed_from_u64(0x5eed);
    // Irwin–Hall(12) shifted: sum of 12 U(0,1) minus 6 is ~N(0,1).
    let mut normal = move || {
        let s: f64 = (0..12).map(|_| rng.random_range(0.0..1.0)).sum::<f64>();
        TRUE_MEAN + 3.0 * (s - 6.0)
    };
    let trials = 400;
    let covered = (0..trials)
        .filter(|_| {
            let mut s = OnlineStats::new();
            for _ in 0..25 {
                s.record(normal());
            }
            let (lo, hi) = s.ci95().expect("25 samples pin a CI");
            lo <= TRUE_MEAN && TRUE_MEAN <= hi
        })
        .count();
    let rate = covered as f64 / trials as f64;
    assert!(
        (0.90..=1.0).contains(&rate),
        "95% CI covered the true mean in {covered}/{trials} trials ({rate:.3})"
    );
}

/// Hand-checked sign-test values (exact binomial arithmetic).
#[test]
fn sign_test_matches_exact_binomial_arithmetic() {
    assert_eq!(sign_test_two_sided(0, 0), None);
    // n = 5, all one side: 2 · (1/2)^5 = 0.0625.
    let p = sign_test_two_sided(5, 0).unwrap();
    assert!((p - 0.0625).abs() < 1e-12, "got {p}");
    // n = 6, 1/5 split: 2 · (C(6,0) + C(6,1)) / 64 = 14/64.
    let p = sign_test_two_sided(1, 5).unwrap();
    assert!((p - 14.0 / 64.0).abs() < 1e-12, "got {p}");
    // Overwhelming asymmetry underflows toward 0 without panicking.
    let p = sign_test_two_sided(900, 100).unwrap();
    assert!(p < 1e-100, "got {p}");
}

/// The t table is monotone toward the normal quantile and the CI uses
/// it: a 2-sample interval is far wider than a 1000-sample one on the
/// same per-sample spread.
#[test]
fn t_table_tightens_the_interval_with_samples() {
    assert!(t_critical_975(1) > t_critical_975(2));
    assert!(t_critical_975(29) > t_critical_975(200));
    assert!((t_critical_975(10_000) - 1.960).abs() < 1e-9);

    let two = fold(&[10.0, 14.0]);
    let (lo2, hi2) = two.ci95().unwrap();
    let many: Vec<f64> = (0..1000)
        .map(|i| if i % 2 == 0 { 10.0 } else { 14.0 })
        .collect();
    let (lo_n, hi_n) = fold(&many).ci95().unwrap();
    assert!(hi2 - lo2 > 10.0 * (hi_n - lo_n));
}
