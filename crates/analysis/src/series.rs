//! Labelled numeric series and table rendering.
//!
//! Experiment binaries print the same rows/series the paper's figures
//! plot; [`Table`] renders them as aligned markdown (for EXPERIMENTS.md)
//! or CSV (for external plotting).

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A named series of `(x, y)` points.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Display name (e.g. `"OPT"`, `"N=1024 lower bound"`).
    pub name: String,
    /// The points, in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Create an empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Append a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// The y values.
    pub fn ys(&self) -> Vec<f64> {
        self.points.iter().map(|&(_, y)| y).collect()
    }

    /// The x values.
    pub fn xs(&self) -> Vec<f64> {
        self.points.iter().map(|&(x, _)| x).collect()
    }

    /// Whether y is non-increasing in x (used by shape assertions such
    /// as "delay falls as duty rises").
    pub fn is_non_increasing(&self) -> bool {
        self.points.windows(2).all(|w| w[1].1 <= w[0].1 + 1e-9)
    }

    /// Whether y is non-decreasing in x.
    pub fn is_non_decreasing(&self) -> bool {
        self.points.windows(2).all(|w| w[1].1 >= w[0].1 - 1e-9)
    }
}

/// A rectangular table: one x column and one column per series, sharing
/// the x grid.
#[derive(Clone, Debug)]
pub struct Table {
    /// Header of the x column.
    pub x_label: String,
    /// The series (columns). All must share the same x grid.
    pub series: Vec<Series>,
}

impl Table {
    /// Build a table; panics if series do not share the x grid.
    pub fn new(x_label: impl Into<String>, series: Vec<Series>) -> Self {
        assert!(!series.is_empty(), "a table needs at least one series");
        let xs = series[0].xs();
        for s in &series[1..] {
            assert_eq!(s.xs(), xs, "series '{}' has a different x grid", s.name);
        }
        Self {
            x_label: x_label.into(),
            series,
        }
    }

    /// Render as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        write!(out, "| {} |", self.x_label).unwrap();
        for s in &self.series {
            write!(out, " {} |", s.name).unwrap();
        }
        out.push('\n');
        write!(out, "|---|").unwrap();
        for _ in &self.series {
            write!(out, "---|").unwrap();
        }
        out.push('\n');
        for (i, &(x, _)) in self.series[0].points.iter().enumerate() {
            write!(out, "| {} |", trim_float(x)).unwrap();
            for s in &self.series {
                write!(out, " {} |", trim_float(s.points[i].1)).unwrap();
            }
            out.push('\n');
        }
        out
    }

    /// Render as an ASCII line chart (shared scale, legend).
    pub fn to_chart(&self) -> String {
        crate::plot::ascii_chart(&self.series, &crate::plot::PlotOptions::default())
    }

    /// Render as CSV with a header row.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        write!(out, "{}", self.x_label).unwrap();
        for s in &self.series {
            write!(out, ",{}", s.name).unwrap();
        }
        out.push('\n');
        for (i, &(x, _)) in self.series[0].points.iter().enumerate() {
            write!(out, "{}", trim_float(x)).unwrap();
            for s in &self.series {
                write!(out, ",{}", trim_float(s.points[i].1)).unwrap();
            }
            out.push('\n');
        }
        out
    }
}

/// Format a float compactly: integers without decimals, otherwise two
/// decimal places.
fn trim_float(v: f64) -> String {
    if (v - v.round()).abs() < 1e-9 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(name: &str, ys: &[f64]) -> Series {
        let mut s = Series::new(name);
        for (i, &y) in ys.iter().enumerate() {
            s.push(i as f64, y);
        }
        s
    }

    #[test]
    fn monotonicity_checks() {
        assert!(series("up", &[1.0, 2.0, 2.0, 5.0]).is_non_decreasing());
        assert!(!series("up", &[1.0, 2.0, 1.5]).is_non_decreasing());
        assert!(series("down", &[5.0, 3.0, 3.0]).is_non_increasing());
    }

    #[test]
    fn markdown_rendering() {
        let t = Table::new(
            "M",
            vec![series("a", &[1.0, 2.5]), series("b", &[3.0, 4.0])],
        );
        let md = t.to_markdown();
        assert!(md.starts_with("| M | a | b |\n|---|---|---|\n"));
        assert!(md.contains("| 0 | 1 | 3 |"));
        assert!(md.contains("| 1 | 2.50 | 4 |"));
    }

    #[test]
    fn csv_rendering() {
        let t = Table::new("x", vec![series("y", &[1.0])]);
        assert_eq!(t.to_csv(), "x,y\n0,1\n");
    }

    #[test]
    #[should_panic(expected = "different x grid")]
    fn mismatched_grids_rejected() {
        let a = series("a", &[1.0, 2.0]);
        let mut b = Series::new("b");
        b.push(5.0, 1.0);
        b.push(6.0, 2.0);
        let _ = Table::new("x", vec![a, b]);
    }
}
