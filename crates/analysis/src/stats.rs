//! Summary statistics over `f64` samples.

use serde::{Deserialize, Serialize};

/// Summary of a sample: count, mean, variance, extremes, percentiles.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean (0 for empty samples).
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
}

impl Summary {
    /// Summarise a sample. Returns an all-zero summary for empty input.
    pub fn of(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
                median: 0.0,
                p95: 0.0,
            };
        }
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / count as f64;
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not be NaN"));
        Self {
            count,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[count - 1],
            median: percentile_sorted(&sorted, 0.50),
            p95: percentile_sorted(&sorted, 0.95),
        }
    }
}

/// Percentile (nearest-rank interpolation) of an ascending-sorted slice.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    assert!((0.0..=1.0).contains(&q));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Median of an unsorted sample (`None` when empty). Robust location
/// estimate for noisy wall-clock measurements: one cold-cache or
/// preempted repetition shifts a mean but leaves the median alone.
pub fn median(samples: &[f64]) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not be NaN"));
    Some(percentile_sorted(&sorted, 0.50))
}

/// Median absolute deviation from the median (`None` when empty) — the
/// robust scale companion of [`median`]. Raw MAD; multiply by 1.4826
/// for a Gaussian-consistent σ estimate.
pub fn mad(samples: &[f64]) -> Option<f64> {
    let m = median(samples)?;
    let devs: Vec<f64> = samples.iter().map(|x| (x - m).abs()).collect();
    median(&devs)
}

/// Ordinary least squares fit `y = a + b·x`; returns `(a, b)`.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 2, "need two points for a line");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    assert!(sxx > 0.0, "x values must not be constant");
    let b = sxy / sxx;
    (my - b * mx, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.count, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.median - 3.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.std_dev - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let sorted = [0.0, 10.0];
        assert!((percentile_sorted(&sorted, 0.5) - 5.0).abs() < 1e-12);
        assert_eq!(percentile_sorted(&sorted, 0.0), 0.0);
        assert_eq!(percentile_sorted(&sorted, 1.0), 10.0);
    }

    #[test]
    fn median_and_mad_are_robust_to_outliers() {
        // One wild outlier moves the mean far but the median/MAD little.
        let clean = [10.0, 11.0, 9.0, 10.5, 9.5];
        let dirty = [10.0, 11.0, 9.0, 10.5, 1000.0];
        assert_eq!(median(&clean), Some(10.0));
        assert_eq!(median(&dirty), Some(10.5));
        assert_eq!(mad(&clean), Some(0.5));
        assert_eq!(mad(&dirty), Some(0.5));
        assert_eq!(median(&[]), None);
        assert_eq!(mad(&[]), None);
        assert_eq!(mad(&[7.0]), Some(0.0));
    }

    #[test]
    fn linear_fit_recovers_line() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 2.0 * x).collect();
        let (a, b) = linear_fit(&xs, &ys);
        assert!((a - 3.0).abs() < 1e-9);
        assert!((b - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "need two points")]
    fn linear_fit_rejects_singletons() {
        let _ = linear_fit(&[1.0], &[2.0]);
    }
}
