//! Summary statistics over `f64` samples: one-shot [`Summary`] of a
//! slice, the streaming [`OnlineStats`] accumulator (Welford update,
//! Chan merge) the campaign reducer folds thousand-seed cells into,
//! 95 % confidence intervals, the exact paired sign test, and the
//! robust noise-tolerance helpers shared by the perf regression gate.

use serde::{Deserialize, Serialize};

/// Summary of a sample: count, mean, variance, extremes, percentiles.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean (0 for empty samples).
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
}

impl Summary {
    /// Summarise a sample. Returns an all-zero summary for empty input.
    pub fn of(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
                median: 0.0,
                p95: 0.0,
            };
        }
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / count as f64;
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not be NaN"));
        Self {
            count,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[count - 1],
            median: percentile_sorted(&sorted, 0.50),
            p95: percentile_sorted(&sorted, 0.95),
        }
    }
}

/// Percentile (nearest-rank interpolation) of an ascending-sorted slice.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    assert!((0.0..=1.0).contains(&q));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Median of an unsorted sample (`None` when empty). Robust location
/// estimate for noisy wall-clock measurements: one cold-cache or
/// preempted repetition shifts a mean but leaves the median alone.
pub fn median(samples: &[f64]) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not be NaN"));
    Some(percentile_sorted(&sorted, 0.50))
}

/// Median absolute deviation from the median (`None` when empty) — the
/// robust scale companion of [`median`]. Raw MAD; multiply by 1.4826
/// for a Gaussian-consistent σ estimate.
pub fn mad(samples: &[f64]) -> Option<f64> {
    let m = median(samples)?;
    let devs: Vec<f64> = samples.iter().map(|x| (x - m).abs()).collect();
    median(&devs)
}

/// Streaming moment accumulator: count, mean, centred second moment
/// (M2), min and max — O(1) memory whatever the sample count.
///
/// `record` is Welford's update; [`merge`](Self::merge) is Chan's
/// parallel combination, mathematically associative, so per-shard
/// partials folded in a *fixed* order reproduce the same bits whatever
/// the worker count that produced them (the campaign reducer's
/// determinism contract). Merging in a different order is still correct
/// to ~1 ulp but not bit-identical — fix the fold order, not the
/// thread count.
#[derive(Clone, Debug, PartialEq)]
pub struct OnlineStats {
    /// Samples recorded.
    pub count: u64,
    /// Running mean (0 when empty).
    pub mean: f64,
    /// Sum of squared deviations from the mean (Welford's M2).
    pub m2: f64,
    /// Smallest sample (+∞ when empty).
    pub min: f64,
    /// Largest sample (−∞ when empty).
    pub max: f64,
}

impl Default for OnlineStats {
    fn default() -> Self {
        Self::new()
    }
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one sample (Welford's update).
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let d = x - self.mean;
        self.mean += d / self.count as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Fold `other` into `self` (Chan's parallel merge).
    pub fn merge(&mut self, other: &Self) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let d = other.mean - self.mean;
        let n = n1 + n2;
        self.m2 += other.m2 + d * d * n1 * n2 / n;
        self.mean += d * n2 / n;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Unbiased sample variance (`None` below two samples).
    pub fn sample_variance(&self) -> Option<f64> {
        (self.count >= 2).then(|| (self.m2 / (self.count - 1) as f64).max(0.0))
    }

    /// Sample standard deviation (`None` below two samples).
    pub fn std_dev(&self) -> Option<f64> {
        self.sample_variance().map(f64::sqrt)
    }

    /// Standard error of the mean (`None` below two samples).
    pub fn sem(&self) -> Option<f64> {
        self.std_dev().map(|s| s / (self.count as f64).sqrt())
    }

    /// Two-sided 95 % confidence interval for the mean, using the
    /// Student-t critical value at `count − 1` degrees of freedom.
    /// `None` below two samples.
    pub fn ci95(&self) -> Option<(f64, f64)> {
        let half = t_critical_975(self.count - 1) * self.sem()?;
        Some((self.mean - half, self.mean + half))
    }
}

/// Two-sided 97.5 % Student-t critical value at `df` degrees of
/// freedom (the multiplier for a 95 % CI). Exact table through df 30,
/// conventional anchors beyond; df 0 (a single sample) returns +∞ —
/// one observation pins no interval.
pub fn t_critical_975(df: u64) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::INFINITY,
        1..=30 => TABLE[df as usize - 1],
        31..=40 => 2.021,
        41..=60 => 2.000,
        61..=120 => 1.980,
        _ => 1.960,
    }
}

/// Exact two-sided sign test: p-value of observing a split at least as
/// lopsided as `pos` vs `neg` under H₀ "positive and negative flips
/// are equally likely" (ties excluded by the caller). `None` when
/// there are no flips at all.
///
/// Computed as `2 · P(X ≤ min(pos, neg))` for `X ~ Bin(pos+neg, ½)`,
/// capped at 1, via log-space binomial terms — exact to f64 and
/// overflow-free for thousand-seed campaigns.
pub fn sign_test_two_sided(pos: u64, neg: u64) -> Option<f64> {
    let n = pos + neg;
    if n == 0 {
        return None;
    }
    let k = pos.min(neg);
    let ln_2n = n as f64 * std::f64::consts::LN_2;
    let mut ln_choose = 0.0; // ln C(n, 0)
    let mut cdf = 0.0;
    for i in 0..=k {
        cdf += (ln_choose - ln_2n).exp();
        ln_choose += ((n - i) as f64).ln() - ((i + 1) as f64).ln();
    }
    Some((2.0 * cdf).min(1.0))
}

/// Scale factor turning a MAD into a Gaussian-consistent σ estimate.
pub const MAD_TO_SIGMA: f64 = 1.4826;

/// Relative robust σ of a measurement: `1.4826 · MAD ∕ median`
/// (median floored at 1e-9 to stay finite).
pub fn rel_sigma(median: f64, mad: f64) -> f64 {
    MAD_TO_SIGMA * mad / median.max(1e-9)
}

/// Combine two independent relative σs in quadrature.
pub fn combined_rel_sigma(a: f64, b: f64) -> f64 {
    (a * a + b * b).sqrt()
}

/// Noise-adapted fractional tolerance: `multiplier · r` clamped to
/// `[floor, ceil]`. The perf gate's policy knob — one implementation,
/// shared by every consumer of robust intervals.
pub fn noise_tolerance(r: f64, multiplier: f64, floor: f64, ceil: f64) -> f64 {
    (multiplier * r).clamp(floor, ceil)
}

/// Ordinary least squares fit `y = a + b·x`; returns `(a, b)`.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 2, "need two points for a line");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    assert!(sxx > 0.0, "x values must not be constant");
    let b = sxy / sxx;
    (my - b * mx, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.count, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.median - 3.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.std_dev - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let sorted = [0.0, 10.0];
        assert!((percentile_sorted(&sorted, 0.5) - 5.0).abs() < 1e-12);
        assert_eq!(percentile_sorted(&sorted, 0.0), 0.0);
        assert_eq!(percentile_sorted(&sorted, 1.0), 10.0);
    }

    #[test]
    fn median_and_mad_are_robust_to_outliers() {
        // One wild outlier moves the mean far but the median/MAD little.
        let clean = [10.0, 11.0, 9.0, 10.5, 9.5];
        let dirty = [10.0, 11.0, 9.0, 10.5, 1000.0];
        assert_eq!(median(&clean), Some(10.0));
        assert_eq!(median(&dirty), Some(10.5));
        assert_eq!(mad(&clean), Some(0.5));
        assert_eq!(mad(&dirty), Some(0.5));
        assert_eq!(median(&[]), None);
        assert_eq!(mad(&[]), None);
        assert_eq!(mad(&[7.0]), Some(0.0));
    }

    #[test]
    fn linear_fit_recovers_line() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 2.0 * x).collect();
        let (a, b) = linear_fit(&xs, &ys);
        assert!((a - 3.0).abs() < 1e-9);
        assert!((b - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "need two points")]
    fn linear_fit_rejects_singletons() {
        let _ = linear_fit(&[1.0], &[2.0]);
    }

    #[test]
    fn online_stats_match_the_batch_summary() {
        let samples = [3.5, -1.0, 2.25, 9.0, 0.5, 4.75, -2.0];
        let mut o = OnlineStats::new();
        for &x in &samples {
            o.record(x);
        }
        let s = Summary::of(&samples);
        assert_eq!(o.count as usize, s.count);
        assert!((o.mean - s.mean).abs() < 1e-12);
        assert_eq!(o.min, s.min);
        assert_eq!(o.max, s.max);
        // Summary's std_dev is population; compare via M2.
        let pop_var = o.m2 / o.count as f64;
        assert!((pop_var.sqrt() - s.std_dev).abs() < 1e-12);
        assert!(o.sample_variance().unwrap() > pop_var);
    }

    #[test]
    fn online_merge_equals_single_pass() {
        let samples: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin() * 50.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &samples {
            whole.record(x);
        }
        let mut merged = OnlineStats::new();
        for chunk in samples.chunks(7) {
            let mut part = OnlineStats::new();
            for &x in chunk {
                part.record(x);
            }
            merged.merge(&part);
        }
        assert_eq!(merged.count, whole.count);
        assert_eq!(merged.min, whole.min);
        assert_eq!(merged.max, whole.max);
        assert!((merged.mean - whole.mean).abs() < 1e-9);
        assert!((merged.m2 - whole.m2).abs() < 1e-6);
        // Merging an empty accumulator is a no-op in both directions.
        let before = merged.clone();
        merged.merge(&OnlineStats::new());
        assert_eq!(merged, before);
        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn ci95_shrinks_with_samples_and_needs_two() {
        let mut one = OnlineStats::new();
        one.record(5.0);
        assert_eq!(one.ci95(), None);

        let mut small = OnlineStats::new();
        let mut large = OnlineStats::new();
        for i in 0..5 {
            small.record(10.0 + (i % 2) as f64);
        }
        for i in 0..500 {
            large.record(10.0 + (i % 2) as f64);
        }
        let (slo, shi) = small.ci95().unwrap();
        let (llo, lhi) = large.ci95().unwrap();
        assert!(slo < small.mean && small.mean < shi);
        assert!(lhi - llo < shi - slo, "more samples, tighter interval");
    }

    #[test]
    fn t_table_is_monotone_toward_the_normal_quantile() {
        let mut prev = f64::INFINITY;
        for df in 1..=200 {
            let t = t_critical_975(df);
            assert!(t <= prev, "t must not increase with df");
            assert!(t >= 1.960);
            prev = t;
        }
        assert_eq!(t_critical_975(0), f64::INFINITY);
        assert_eq!(t_critical_975(1_000_000), 1.960);
    }

    #[test]
    fn sign_test_matches_hand_computed_cases() {
        assert_eq!(sign_test_two_sided(0, 0), None);
        // Balanced splits are maximally unsurprising.
        assert_eq!(sign_test_two_sided(5, 5), Some(1.0));
        // n=5, k=0: 2·(1/32) = 0.0625.
        let p = sign_test_two_sided(5, 0).unwrap();
        assert!((p - 0.0625).abs() < 1e-12);
        // Symmetry.
        assert_eq!(sign_test_two_sided(8, 2), sign_test_two_sided(2, 8));
        // A lopsided thousand-flip split is vanishingly unlikely.
        let p = sign_test_two_sided(900, 100).unwrap();
        assert!(p > 0.0 && p < 1e-100, "p = {p}");
    }

    #[test]
    fn noise_helpers_reproduce_the_perf_gate_policy() {
        // Quiet reps: clamped up to the floor.
        let quiet = combined_rel_sigma(rel_sigma(1000.0, 1.0), rel_sigma(1000.0, 1.0));
        assert_eq!(noise_tolerance(quiet, 4.0, 0.25, 0.40), 0.25);
        // Wild reps: clamped down to the ceiling.
        let wild = combined_rel_sigma(rel_sigma(1000.0, 200.0), rel_sigma(1000.0, 200.0));
        assert_eq!(noise_tolerance(wild, 4.0, 0.25, 0.40), 0.40);
        // In-between: the quadrature value scaled by the multiplier.
        let r = combined_rel_sigma(rel_sigma(1000.0, 50.0), 0.0);
        let tol = noise_tolerance(r, 4.0, 0.25, 0.40);
        assert!((tol - 4.0 * 1.4826 * 0.05).abs() < 1e-12);
    }
}
