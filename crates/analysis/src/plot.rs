//! Terminal (ASCII) line charts for experiment output.
//!
//! The experiment harness prints each figure's series as a table *and*
//! as a rough line chart, so the shape comparisons recorded in
//! EXPERIMENTS.md (knees, orderings, crossovers) can be eyeballed
//! directly in the terminal without external plotting.

use crate::series::Series;
use std::fmt::Write as _;

/// Rendering options for [`ascii_chart`].
#[derive(Clone, Copy, Debug)]
pub struct PlotOptions {
    /// Chart body width in characters.
    pub width: usize,
    /// Chart body height in rows.
    pub height: usize,
    /// Force the y axis to start at zero.
    pub zero_based: bool,
}

impl Default for PlotOptions {
    fn default() -> Self {
        Self {
            width: 64,
            height: 16,
            zero_based: true,
        }
    }
}

/// Marker glyphs assigned to series, in order.
const MARKS: &[char] = &['o', 'x', '+', '*', '#', '@', '%', '&'];

/// Render several series into one ASCII chart with a shared scale and a
/// legend. Series may have different x grids. Returns an empty string
/// for empty input.
pub fn ascii_chart(series: &[Series], opts: &PlotOptions) -> String {
    let points: usize = series.iter().map(|s| s.points.len()).sum();
    if series.is_empty() || points == 0 {
        return String::new();
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for s in series {
        for &(x, y) in &s.points {
            x_min = x_min.min(x);
            x_max = x_max.max(x);
            y_min = y_min.min(y);
            y_max = y_max.max(y);
        }
    }
    if opts.zero_based {
        y_min = y_min.min(0.0);
    }
    if (x_max - x_min).abs() < 1e-12 {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < 1e-12 {
        y_max = y_min + 1.0;
    }

    let w = opts.width.max(8);
    let h = opts.height.max(4);
    let mut grid = vec![vec![' '; w]; h];

    for (si, s) in series.iter().enumerate() {
        let mark = MARKS[si % MARKS.len()];
        for &(x, y) in &s.points {
            let cx = ((x - x_min) / (x_max - x_min) * (w - 1) as f64).round() as usize;
            let cy = ((y - y_min) / (y_max - y_min) * (h - 1) as f64).round() as usize;
            let row = h - 1 - cy; // y grows upward
            let cell = &mut grid[row][cx];
            // Overlaps render as '?' so they are visibly ambiguous.
            *cell = if *cell == ' ' || *cell == mark {
                mark
            } else {
                '?'
            };
        }
    }

    let mut out = String::new();
    let y_label_w = 10;
    for (i, row) in grid.iter().enumerate() {
        let y_here = y_max - (y_max - y_min) * i as f64 / (h - 1) as f64;
        let label = if i == 0 || i == h - 1 || i == h / 2 {
            format!("{y_here:>9.1}")
        } else {
            " ".repeat(9)
        };
        writeln!(out, "{label} |{}", row.iter().collect::<String>()).unwrap();
    }
    writeln!(out, "{} +{}", " ".repeat(y_label_w - 1), "-".repeat(w)).unwrap();
    writeln!(
        out,
        "{} {:<w$.1}{:>rest$.1}",
        " ".repeat(y_label_w - 1),
        x_min,
        x_max,
        w = w / 2,
        rest = w - w / 2
    )
    .unwrap();
    for (si, s) in series.iter().enumerate() {
        writeln!(
            out,
            "{} {} = {}",
            " ".repeat(y_label_w - 1),
            MARKS[si % MARKS.len()],
            s.name
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(name: &str, pts: &[(f64, f64)]) -> Series {
        let mut s = Series::new(name);
        for &(x, y) in pts {
            s.push(x, y);
        }
        s
    }

    #[test]
    fn empty_input_renders_nothing() {
        assert_eq!(ascii_chart(&[], &PlotOptions::default()), "");
        assert_eq!(
            ascii_chart(&[Series::new("e")], &PlotOptions::default()),
            ""
        );
    }

    #[test]
    fn single_series_has_marks_and_legend() {
        let s = line("delay", &[(0.0, 0.0), (1.0, 5.0), (2.0, 10.0)]);
        let out = ascii_chart(&[s], &PlotOptions::default());
        assert!(out.contains('o'), "marker present");
        assert!(out.contains("o = delay"), "legend present");
        assert!(out.contains("10.0"), "max y label present");
    }

    #[test]
    fn increasing_series_puts_later_points_higher() {
        let s = line("up", &[(0.0, 0.0), (10.0, 100.0)]);
        let out = ascii_chart(
            &[s],
            &PlotOptions {
                width: 20,
                height: 10,
                zero_based: true,
            },
        );
        let rows: Vec<&str> = out.lines().collect();
        // Last point (x=10,y=100) is on the top row, first on the bottom
        // body row.
        assert!(rows[0].contains('o'), "top row holds the max point");
        assert!(rows[9].contains('o'), "bottom body row holds the min point");
    }

    #[test]
    fn two_series_get_distinct_markers() {
        let a = line("a", &[(0.0, 1.0), (1.0, 2.0)]);
        let b = line("b", &[(0.0, 3.0), (1.0, 4.0)]);
        let out = ascii_chart(&[a, b], &PlotOptions::default());
        assert!(out.contains("o = a"));
        assert!(out.contains("x = b"));
        assert!(out.contains('o') && out.contains('x'));
    }

    #[test]
    fn overlapping_points_become_question_marks() {
        let a = line("a", &[(0.0, 1.0)]);
        let b = line("b", &[(0.0, 1.0)]);
        let out = ascii_chart(&[a, b], &PlotOptions::default());
        assert!(out.contains('?'));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let s = line("flat", &[(0.0, 5.0), (1.0, 5.0)]);
        let out = ascii_chart(
            &[s],
            &PlotOptions {
                zero_based: false,
                ..PlotOptions::default()
            },
        );
        assert!(out.contains('o'));
    }
}
