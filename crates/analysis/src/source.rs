//! Unified event source: one iterator type over JSONL and binary
//! traces, so forensics, attribution and replay consume either format
//! through the same `Result<SimEvent, _>` stream.
//!
//! The format is sniffed from the file's first bytes (the binary
//! container starts with `LDCFBIN1`), not its extension — an exported
//! or renamed trace still opens correctly. Both branches stream:
//! [`ldcf_obs::JsonlReader`] holds one line, the binlog path one
//! decoded frame.

use ldcf_obs::binlog::{BinError, BinEvents, BinReader, BIN_MAGIC};
use ldcf_obs::{JsonlReader, SimEvent};
use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, Read, Seek, SeekFrom};
use std::path::Path;

/// Why an event source failed to open or stream.
#[derive(Debug)]
pub enum SourceError {
    /// The file could not be opened or read.
    Io(io::Error),
    /// The binary container is damaged.
    Bin(BinError),
    /// A JSONL line did not parse.
    Jsonl(serde::Error),
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceError::Io(e) => write!(f, "trace i/o: {e}"),
            SourceError::Bin(e) => write!(f, "{e}"),
            SourceError::Jsonl(e) => write!(f, "trace jsonl: {e}"),
        }
    }
}

impl std::error::Error for SourceError {}

impl From<io::Error> for SourceError {
    fn from(e: io::Error) -> Self {
        SourceError::Io(e)
    }
}

impl From<BinError> for SourceError {
    fn from(e: BinError) -> Self {
        SourceError::Bin(e)
    }
}

/// A streaming [`SimEvent`] iterator over a trace file of either
/// format. Construct with [`EventSource::open`] and consume through
/// [`Iterator`]; feed it to [`crate::ForensicsReport::from_source`] or
/// [`crate::ReplayReport::from_source`].
pub enum EventSource {
    /// Row-wise JSONL trace, streamed line by line.
    Jsonl(JsonlReader<BufReader<File>>),
    /// Binary columnar trace, streamed frame by frame.
    Bin(BinEvents<BufReader<File>>),
}

impl EventSource {
    /// Open a trace file, sniffing the format from its leading bytes.
    pub fn open(path: &Path) -> Result<Self, SourceError> {
        let mut file = BufReader::new(File::open(path)?);
        let mut magic = [0u8; 8];
        let n = read_up_to(&mut file, &mut magic)?;
        file.seek(SeekFrom::Start(0))?;
        if magic[..n] == BIN_MAGIC {
            Ok(EventSource::Bin(BinReader::new(file)?.events()))
        } else {
            Ok(EventSource::Jsonl(JsonlReader::new(file)))
        }
    }

    /// `"bin"` or `"jsonl"` — the sniffed format.
    pub fn format(&self) -> &'static str {
        match self {
            EventSource::Jsonl(_) => "jsonl",
            EventSource::Bin(_) => "bin",
        }
    }
}

/// `read_exact` minus the hard EOF error: short files (an empty JSONL
/// trace) sniff as JSONL instead of failing to open.
fn read_up_to<R: Read>(src: &mut R, buf: &mut [u8]) -> io::Result<usize> {
    let mut n = 0;
    while n < buf.len() {
        match src.read(&mut buf[n..])? {
            0 => break,
            k => n += k,
        }
    }
    Ok(n)
}

impl Iterator for EventSource {
    type Item = Result<SimEvent, SourceError>;

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            EventSource::Jsonl(r) => Some(r.next()?.map_err(SourceError::Jsonl)),
            EventSource::Bin(r) => Some(r.next()?.map_err(SourceError::Bin)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldcf_net::NodeId;
    use ldcf_obs::{BinSink, JsonlSink, SimObserver};
    use std::io::Write;

    fn events() -> Vec<SimEvent> {
        vec![
            SimEvent::TxAttempt {
                slot: 1,
                sender: NodeId(0),
                receiver: NodeId(1),
                packet: 0,
                bypass_mac: false,
            },
            SimEvent::Delivered {
                slot: 1,
                sender: NodeId(0),
                receiver: NodeId(1),
                packet: 0,
                fresh: true,
            },
            SimEvent::SlotEnd {
                slot: 1,
                queued: 0,
                active_nodes: 2,
            },
        ]
    }

    #[test]
    fn sniffs_both_formats_regardless_of_extension() {
        let dir = std::env::temp_dir().join(format!("ldcf-source-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        // JSONL under a misleading name.
        let jsonl_path = dir.join("misleading.bin");
        let mut sink = JsonlSink::new(File::create(&jsonl_path).unwrap());
        for ev in &events() {
            sink.on_event(ev);
        }
        sink.on_finish();
        sink.into_result().unwrap();
        let src = EventSource::open(&jsonl_path).unwrap();
        assert_eq!(src.format(), "jsonl");
        let got: Vec<SimEvent> = src.collect::<Result<_, _>>().unwrap();
        assert_eq!(got, events());

        // Binary under a misleading name.
        let bin_path = dir.join("misleading.jsonl");
        let mut sink = BinSink::new(File::create(&bin_path).unwrap());
        for ev in &events() {
            sink.on_event(ev);
        }
        sink.on_finish();
        sink.into_result().unwrap();
        let src = EventSource::open(&bin_path).unwrap();
        assert_eq!(src.format(), "bin");
        let got: Vec<SimEvent> = src.collect::<Result<_, _>>().unwrap();
        assert_eq!(got, events());

        // Short / empty files sniff as JSONL and stream zero events.
        let empty_path = dir.join("empty.jsonl");
        File::create(&empty_path).unwrap().write_all(b"").unwrap();
        let src = EventSource::open(&empty_path).unwrap();
        assert_eq!(src.format(), "jsonl");
        assert_eq!(src.count(), 0);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reports_from_either_format_agree() {
        let evs = events();
        let mut bin = BinSink::new(Vec::new());
        for ev in &evs {
            bin.on_event(ev);
        }
        bin.on_finish();
        let bytes = bin.into_result().unwrap();
        let from_bin = crate::ReplayReport::from_source(
            ldcf_obs::binlog::BinReader::new(std::io::Cursor::new(bytes))
                .unwrap()
                .events(),
        )
        .unwrap();
        assert_eq!(from_bin, crate::ReplayReport::from_events(&evs));
    }
}
