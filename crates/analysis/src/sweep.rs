//! Parallel parameter sweeps (rayon).
//!
//! The §V experiments sweep duty cycles and average over random seeds —
//! independent simulation runs, perfect for data parallelism. Per the
//! hpc-parallel guides, we expose rayon-style helpers rather than
//! hand-rolled thread pools.

use rayon::prelude::*;

/// Evaluate `f` at every parameter value in parallel, preserving order.
pub fn parallel_sweep<P, R, F>(params: &[P], f: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(&P) -> R + Sync,
{
    params.par_iter().map(f).collect()
}

/// Monte-Carlo mean of `f(seed)` over `seeds`, computed in parallel.
pub fn monte_carlo_mean<F>(seeds: &[u64], f: F) -> f64
where
    F: Fn(u64) -> f64 + Sync,
{
    assert!(!seeds.is_empty());
    let total: f64 = seeds.par_iter().map(|&s| f(s)).sum();
    total / seeds.len() as f64
}

/// Monte-Carlo means for several seeds per parameter: the cross product
/// `(param, seed)` is flattened for maximal parallelism, then reduced
/// per parameter.
pub fn sweep_with_seeds<P, F>(params: &[P], seeds: &[u64], f: F) -> Vec<f64>
where
    P: Sync,
    F: Fn(&P, u64) -> f64 + Sync,
{
    assert!(!seeds.is_empty());
    let jobs: Vec<(usize, u64)> = (0..params.len())
        .flat_map(|i| seeds.iter().map(move |&s| (i, s)))
        .collect();
    let results: Vec<(usize, f64)> = jobs
        .par_iter()
        .map(|&(i, s)| (i, f(&params[i], s)))
        .collect();
    let mut sums = vec![0.0; params.len()];
    for (i, v) in results {
        sums[i] += v;
    }
    sums.iter().map(|s| s / seeds.len() as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_preserves_order() {
        let params = [1u64, 2, 3, 4];
        let out = parallel_sweep(&params, |&p| p * 10);
        assert_eq!(out, vec![10, 20, 30, 40]);
    }

    #[test]
    fn monte_carlo_averages() {
        let seeds: Vec<u64> = (0..100).collect();
        let m = monte_carlo_mean(&seeds, |s| s as f64);
        assert!((m - 49.5).abs() < 1e-12);
    }

    #[test]
    fn sweep_with_seeds_reduces_per_param() {
        let params = [0.0f64, 100.0];
        let seeds = [1u64, 2, 3];
        let out = sweep_with_seeds(&params, &seeds, |&p, s| p + s as f64);
        assert!((out[0] - 2.0).abs() < 1e-12);
        assert!((out[1] - 102.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_matches_serial() {
        let params: Vec<u32> = (0..64).collect();
        let par = parallel_sweep(&params, |&p| (p as f64).sqrt());
        let ser: Vec<f64> = params.iter().map(|&p| (p as f64).sqrt()).collect();
        assert_eq!(par, ser);
    }
}
