//! Flood forensics: dissemination-tree reconstruction and per-node
//! delay attribution from a slot-level JSONL trace.
//!
//! The paper's delay claims are *causal* — duty-cycle waiting
//! (Lemma 2 / Theorem 1), link-loss magnification (§IV-C) and queue
//! blocking bounded by `m - 1` packets (Corollary 1) — but a
//! `SimReport` only shows the aggregate mean. [`ForensicsReport`]
//! rebuilds the mechanism from the event stream:
//!
//! * per packet, the **dissemination tree**: each informed node's
//!   unique fresh-copy parent (`Delivered`/`Overheard` with
//!   `fresh: true`; duplicates cost energy but never create edges),
//! * per node, the **five-way attribution** of its flooding delay
//!   (see [`crate::attribution`]) along its informing chain,
//! * per packet, the **critical path** — the informing chain of the
//!   node whose copy triggered `CoverageReached`, the empirical
//!   analogue of the FDL bound,
//! * per relay, the **blocking depth** — how many FCFS-earlier packets
//!   the relay served between a packet's arrival and its first service
//!   of that packet, checked against Corollary 1's `m - 1`.
//!
//! Three identities are *hard checks* (any breach lands in
//! [`ForensicsReport::violations`] and fails the CI forensics pass):
//! every node's five components sum exactly to its flooding delay; the
//! tree spans all informed nodes (exactly one parent, informed no
//! later than the child); and — on oracle runs (any `TxAttempt` with
//! `bypass_mac`, i.e. the OPT protocol that realises the paper's
//! structured pipeline) — blocking depth never exceeds `m - 1`.
//! Corollary 1 is a property of that pipeline, and on the GreenOrbs
//! fig9 trace the OPT bound is *tight*: the observed maximum equals
//! `m - 1` exactly. Heuristic MAC protocols (DBAO, opportunistic
//! flooding) are outside the corollary's hypotheses — their relays
//! provably pile up more concurrent floods — so for them an exceeded
//! bound is reported as an advisory with the measured depth, like tree
//! depth against the compact-model `m = ceil(log2(1 + N))`, which real
//! topologies beat for the same reason (the complete-graph model the
//! bound lives in).

use crate::attribution::{attribute_hop, merge_failures, Cause, DelayAttribution};
use ldcf_core::fdl::{blocking_depth, m_of};
use ldcf_net::{NodeId, PacketId, SOURCE};
use ldcf_obs::SimEvent;
use serde::Value;
use std::collections::HashMap;
use std::fmt;

/// Error raised when a trace cannot support forensics (unparseable, or
/// missing the schedule/push information reconstruction needs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ForensicsError(pub String);

impl fmt::Display for ForensicsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "forensics: {}", self.0)
    }
}

impl std::error::Error for ForensicsError {}

/// How a node obtained its first copy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Via {
    /// Dedicated unicast reception.
    Delivery,
    /// Opportunistic capture of someone else's unicast.
    Overhear,
}

impl Via {
    /// Stable label used in JSON reports.
    pub fn label(self) -> &'static str {
        match self {
            Via::Delivery => "delivery",
            Via::Overhear => "overhear",
        }
    }
}

/// One informed node's place in a packet's dissemination tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeForensics {
    /// The informed node.
    pub node: NodeId,
    /// The node whose transmission informed it (its unique parent).
    pub parent: NodeId,
    /// Dedicated delivery or overhear.
    pub via: Via,
    /// Slot of the node's first copy.
    pub informed_at: u64,
    /// Hops from the source along informing edges.
    pub depth: u32,
    /// Flooding delay `informed_at - pushed_at`.
    pub delay: u64,
    /// Five-way split of `delay`; sums to it exactly.
    pub attribution: DelayAttribution,
    /// Distinct FCFS-earlier packets this node served between this
    /// packet's arrival and its first service of it (Corollary 1);
    /// `None` if the node never served the packet.
    pub blocking: Option<u32>,
}

/// One hop of a critical path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PathHop {
    /// The node informed at this hop.
    pub node: NodeId,
    /// Slot the node was informed.
    pub slot: u64,
    /// How it was informed.
    pub via: Via,
}

/// Forensics of one packet's flood.
#[derive(Clone, Debug)]
pub struct PacketForensics {
    /// Sequence number.
    pub packet: PacketId,
    /// The node this packet's flood is rooted at: the source unless the
    /// trace carries a `packet_injected` event (multi-source workloads).
    pub origin: NodeId,
    /// Slot of the origin's first committed transmission.
    pub pushed_at: u64,
    /// Slot the coverage target was reached, if it was.
    pub covered_at: Option<u64>,
    /// Informed nodes in informing order (tree in parent-before-child
    /// order).
    pub nodes: Vec<NodeForensics>,
    /// Attribution summed over all informed nodes.
    pub attribution: DelayAttribution,
    /// Attribution along the critical path; totals exactly the
    /// packet's flooding delay. `None` if the packet never covered.
    pub coverage_attribution: Option<DelayAttribution>,
    /// Source-rooted informing chain of the node whose copy triggered
    /// coverage. Empty if the packet never covered.
    pub critical_path: Vec<PathHop>,
    /// Deepest informed node.
    pub tree_depth: u32,
    /// Largest observed blocking depth.
    pub max_blocking: u32,
}

impl PacketForensics {
    /// Flooding delay (push → coverage), the paper's Fig. 9/10 metric.
    pub fn flooding_delay(&self) -> Option<u64> {
        Some(self.covered_at?.saturating_sub(self.pushed_at))
    }
}

/// A breach of one of the hard theory checks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A node's five attribution components do not sum to its delay.
    AttributionMismatch {
        /// Packet involved.
        packet: PacketId,
        /// Node whose attribution is off.
        node: NodeId,
        /// Sum of the five components.
        attributed: u64,
        /// The node's actual flooding delay.
        delay: u64,
    },
    /// A fresh copy arrived from a parent that was not itself informed
    /// strictly earlier (the tree would not span the informed set).
    OrphanNode {
        /// Packet involved.
        packet: PacketId,
        /// The freshly informed node.
        node: NodeId,
        /// The claimed parent.
        parent: NodeId,
        /// Slot of the fresh copy.
        slot: u64,
    },
    /// A node received two fresh copies of the same packet.
    DuplicateParent {
        /// Packet involved.
        packet: PacketId,
        /// The doubly informed node.
        node: NodeId,
        /// Slot of the second fresh copy.
        slot: u64,
    },
    /// A relay's blocking depth exceeded Corollary 1's `m - 1`.
    BlockingDepthExceeded {
        /// Packet involved.
        packet: PacketId,
        /// The blocked relay.
        node: NodeId,
        /// Observed blocking depth.
        depth: u32,
        /// The `m - 1` bound.
        bound: u32,
    },
}

impl Violation {
    /// Human-readable one-liner.
    pub fn describe(&self) -> String {
        match *self {
            Violation::AttributionMismatch {
                packet,
                node,
                attributed,
                delay,
            } => format!(
                "packet {packet}: node {node} attribution {attributed} != delay {delay}"
            ),
            Violation::OrphanNode {
                packet,
                node,
                parent,
                slot,
            } => format!(
                "packet {packet}: node {node} informed at {slot} by {parent}, which was not informed earlier"
            ),
            Violation::DuplicateParent { packet, node, slot } => format!(
                "packet {packet}: node {node} received a second fresh copy at {slot}"
            ),
            Violation::BlockingDepthExceeded {
                packet,
                node,
                depth,
                bound,
            } => format!(
                "packet {packet}: relay {node} blocked by {depth} packets, Corollary 1 bound is {bound}"
            ),
        }
    }
}

/// One node's working schedule, rebuilt from `schedule_slot` events.
#[derive(Clone, Debug)]
struct ScheduleInfo {
    period: u32,
    active: Vec<bool>,
}

impl ScheduleInfo {
    fn is_active(&self, slot: u64) -> bool {
        self.active[(slot % self.period as u64) as usize]
    }
}

/// Full forensic reconstruction of one traced run.
#[derive(Clone, Debug)]
pub struct ForensicsReport {
    /// Nodes in the trace (source + sensors).
    pub n_nodes: usize,
    /// Sensors `N` (source excluded).
    pub n_sensors: usize,
    /// The paper's `m = ceil(log2(1 + N))`.
    pub m: u32,
    /// Corollary 1's blocking bound `m - 1`.
    pub blocking_bound: u32,
    /// Whether the trace is an oracle (`bypass_mac`) run — the regime
    /// Corollary 1's pipeline bound is enforced in; heuristic MAC runs
    /// get blocking exceedances as advisories instead.
    pub oracle: bool,
    /// Per-packet forensics, indexed by sequence number.
    pub packets: Vec<PacketForensics>,
    /// Attribution summed over every informed node of every packet.
    pub totals: DelayAttribution,
    /// Attribution summed along critical paths only; its total divided
    /// by the covered-packet count is exactly the run's mean flooding
    /// delay.
    pub coverage_totals: DelayAttribution,
    /// Mean flooding delay over covered packets — same arithmetic as
    /// `SimReport::mean_flooding_delay`, so the figures match exactly.
    pub mean_flooding_delay: Option<f64>,
    /// Deepest dissemination tree seen.
    pub max_tree_depth: u32,
    /// Largest blocking depth seen.
    pub max_blocking: u32,
    /// Non-fresh dedicated deliveries (energy only, no tree edges).
    pub duplicate_deliveries: u64,
    /// Non-fresh overheard copies (energy only, no tree edges).
    pub duplicate_overhears: u64,
    /// Hard theory-check breaches; empty on a healthy run.
    pub violations: Vec<Violation>,
    /// Soft observations (e.g. tree depth beyond the compact-model
    /// `m`) — reported, never failed on.
    pub advisories: Vec<String>,
}

/// Streaming pass 1 of the forensic reconstruction: absorbs events one
/// at a time into the static/dynamic tables the tree pass needs. Peak
/// memory is bounded by the *reconstruction state* (schedules, fresh
/// edges, failure slots) — never by the raw event stream, which is why
/// [`ForensicsReport::from_source`] can digest traces far larger than
/// RAM.
#[derive(Debug, Default)]
struct Collector {
    schedules: Vec<Option<ScheduleInfo>>,
    pushed_at: HashMap<PacketId, u64>,
    covered: HashMap<PacketId, (u64, NodeId)>,
    last_fresh: HashMap<PacketId, NodeId>,
    /// Fresh-copy edges in stream order: (packet, child, parent, slot, via).
    edges: Vec<(PacketId, NodeId, NodeId, u64, Via)>,
    /// Failed/deferred attempts aimed at (receiver, packet) per slot.
    failures: HashMap<(u32, PacketId, u64), Cause>,
    /// Slots each (node, packet) was served: committed, deferred or
    /// mistimed transmission attempts carrying the packet.
    serves: HashMap<(u32, PacketId), Vec<u64>>,
    dup_delivered: u64,
    dup_overheard: u64,
    max_packet: Option<PacketId>,
    oracle: bool,
    /// Per-packet flood origin; defaults to the source for packets
    /// without an explicit injection event. An injection precedes the
    /// packet's first transmission in stream order, so the map is
    /// complete by the time a push could be recorded.
    origins: HashMap<PacketId, NodeId>,
}

impl Collector {
    fn fail(&mut self, r: NodeId, p: PacketId, s: u64, cause: Cause) {
        self.failures
            .entry((r.0, p, s))
            .and_modify(|c| *c = merge_failures(*c, cause))
            .or_insert(cause);
    }

    fn absorb(&mut self, ev: &SimEvent) -> Result<(), ForensicsError> {
        if let Some(p) = ev.packet_id() {
            self.max_packet = Some(self.max_packet.map_or(p, |m| m.max(p)));
        }
        match *ev {
            SimEvent::ScheduleSlot {
                node,
                period,
                offset,
                ..
            } => {
                let i = node.index();
                if i >= self.schedules.len() {
                    self.schedules.resize_with(i + 1, || None);
                }
                let info = self.schedules[i].get_or_insert_with(|| ScheduleInfo {
                    period,
                    active: vec![false; period as usize],
                });
                if info.period != period || offset >= period {
                    return Err(ForensicsError(format!(
                        "inconsistent schedule_slot for node {node}: period {period}, offset {offset}"
                    )));
                }
                info.active[offset as usize] = true;
            }
            SimEvent::TxAttempt {
                slot,
                sender,
                packet,
                bypass_mac,
                ..
            } => {
                self.oracle |= bypass_mac;
                if sender == self.origins.get(&packet).copied().unwrap_or(SOURCE) {
                    self.pushed_at.entry(packet).or_insert(slot);
                }
                self.serves
                    .entry((sender.0, packet))
                    .or_default()
                    .push(slot);
            }
            SimEvent::Mistimed {
                slot,
                sender,
                receiver,
                packet,
            } => {
                self.serves
                    .entry((sender.0, packet))
                    .or_default()
                    .push(slot);
                self.fail(receiver, packet, slot, Cause::LinkLoss);
            }
            SimEvent::Deferred {
                slot,
                sender,
                receiver,
                packet,
            } => {
                self.serves
                    .entry((sender.0, packet))
                    .or_default()
                    .push(slot);
                self.fail(receiver, packet, slot, Cause::BusyDefer);
            }
            SimEvent::LinkLoss {
                slot,
                receiver,
                packet,
                ..
            } => self.fail(receiver, packet, slot, Cause::LinkLoss),
            SimEvent::Collision {
                slot,
                receiver,
                packet,
                ..
            } => self.fail(receiver, packet, slot, Cause::Collision),
            SimEvent::ReceiverBusy {
                slot,
                receiver,
                packet,
                ..
            } => self.fail(receiver, packet, slot, Cause::BusyDefer),
            SimEvent::Delivered {
                slot,
                sender,
                receiver,
                packet,
                fresh,
            } => {
                if fresh {
                    self.edges
                        .push((packet, receiver, sender, slot, Via::Delivery));
                    self.last_fresh.insert(packet, receiver);
                } else {
                    self.dup_delivered += 1;
                }
            }
            SimEvent::Overheard {
                slot,
                sender,
                receiver,
                packet,
                fresh,
            } => {
                if fresh {
                    self.edges
                        .push((packet, receiver, sender, slot, Via::Overhear));
                    self.last_fresh.insert(packet, receiver);
                } else {
                    self.dup_overheard += 1;
                }
            }
            SimEvent::CoverageReached { slot, packet, .. } => {
                // The engine emits this right after the fresh copy
                // that crossed the target, so the last fresh
                // receiver of the packet is the covering node.
                let who = self.last_fresh.get(&packet).copied().ok_or_else(|| {
                    ForensicsError(format!(
                        "coverage_reached for packet {packet} with no prior fresh copy"
                    ))
                })?;
                self.covered.entry(packet).or_insert((slot, who));
            }
            // Fault-injection annotations: BurstLoss is tagged onto
            // a LinkLoss already attributed above; churn and retry
            // events carry no delay attribution of their own (and
            // churn traces are rejected later for their schedule
            // changes anyway).
            SimEvent::BurstLoss { .. }
            | SimEvent::NodeCrashed { .. }
            | SimEvent::NodeRecovered { .. }
            | SimEvent::SourceRetry { .. } => {}
            SimEvent::PacketInjected { node, packet, .. } => {
                self.origins.insert(packet, node);
            }
            SimEvent::SlotEnd { .. } => {}
        }
        Ok(())
    }
}

impl ForensicsReport {
    /// Parse a JSONL trace and reconstruct it (streaming, line by line).
    pub fn from_jsonl(text: &str) -> Result<Self, ForensicsError> {
        Self::from_source(ldcf_obs::JsonlReader::new(text.as_bytes()))
    }

    /// Reconstruct from any fallible event stream — a
    /// [`ldcf_obs::JsonlReader`], a [`ldcf_obs::binlog::BinReader`]
    /// iterator, or an in-memory collection — holding only the
    /// reconstruction tables, never the full event vector.
    pub fn from_source<I, E>(events: I) -> Result<Self, ForensicsError>
    where
        I: IntoIterator<Item = Result<SimEvent, E>>,
        E: fmt::Display,
    {
        let mut c = Collector::default();
        for ev in events {
            let ev = ev.map_err(|e| ForensicsError(e.to_string()))?;
            c.absorb(&ev)?;
        }
        Self::from_collector(c)
    }

    /// Reconstruct from an in-memory event stream.
    pub fn from_events(events: &[SimEvent]) -> Result<Self, ForensicsError> {
        let mut c = Collector::default();
        for ev in events {
            c.absorb(ev)?;
        }
        Self::from_collector(c)
    }

    /// Pass 2: per-packet trees, attribution and blocking over the
    /// collected tables.
    fn from_collector(collector: Collector) -> Result<Self, ForensicsError> {
        let Collector {
            schedules,
            pushed_at,
            covered,
            last_fresh: _,
            edges,
            failures,
            serves,
            dup_delivered,
            dup_overheard,
            max_packet,
            oracle,
            origins,
        } = collector;

        if schedules.is_empty() {
            return Err(ForensicsError(
                "trace has no schedule_slot events — it predates forensic tracing; \
                 re-generate it with --trace-events"
                    .into(),
            ));
        }
        let schedules: Vec<ScheduleInfo> = schedules
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                s.ok_or_else(|| ForensicsError(format!("node {i} has no schedule_slot events")))
            })
            .collect::<Result<_, _>>()?;
        let n_nodes = schedules.len();
        let n_sensors = n_nodes.saturating_sub(1);
        let m = m_of(n_sensors as u64);
        let bound = blocking_depth(n_sensors as u64);

        // FCFS arrival order per node, across packets (the queues are
        // shared): position of each (node, packet) in the node's fresh
        // arrival sequence.
        let mut arrival_pos: HashMap<(u32, PacketId), usize> = HashMap::new();
        let mut arrival_list: HashMap<u32, Vec<PacketId>> = HashMap::new();
        for &(p, child, _, _, _) in &edges {
            let list = arrival_list.entry(child.0).or_default();
            arrival_pos.entry((child.0, p)).or_insert_with(|| {
                list.push(p);
                list.len() - 1
            });
        }

        // --- pass 2: per-packet trees, attribution, blocking ------------
        let n_packets = max_packet.map_or(0, |p| p as usize + 1);
        let mut violations: Vec<Violation> = Vec::new();
        let mut advisories: Vec<String> = Vec::new();
        let mut packets: Vec<PacketForensics> = Vec::with_capacity(n_packets);

        for p in 0..n_packets as PacketId {
            let origin = origins.get(&p).copied().unwrap_or(SOURCE);
            let pushed = match pushed_at.get(&p) {
                Some(&s) => s,
                None => {
                    // Never pushed: nothing to attribute. A fresh copy
                    // without a push would be an incoherent trace.
                    if edges.iter().any(|&(ep, ..)| ep == p) {
                        return Err(ForensicsError(format!(
                            "packet {p} has fresh copies but no transmission from its origin {origin}"
                        )));
                    }
                    packets.push(PacketForensics {
                        packet: p,
                        origin,
                        pushed_at: 0,
                        covered_at: None,
                        nodes: Vec::new(),
                        attribution: DelayAttribution::default(),
                        coverage_attribution: None,
                        critical_path: Vec::new(),
                        tree_depth: 0,
                        max_blocking: 0,
                    });
                    continue;
                }
            };

            let mut informed: HashMap<u32, usize> = HashMap::new();
            let mut nodes: Vec<NodeForensics> = Vec::new();
            let mut pkt_attr = DelayAttribution::default();
            let mut tree_depth = 0u32;
            let mut max_blocking = 0u32;

            for &(ep, child, parent, slot, via) in &edges {
                if ep != p {
                    continue;
                }
                if informed.contains_key(&child.0) {
                    violations.push(Violation::DuplicateParent {
                        packet: p,
                        node: child,
                        slot,
                    });
                    continue;
                }
                let (parent_ready, parent_depth, parent_attr) = if parent == origin {
                    (pushed, 0, DelayAttribution::default())
                } else {
                    match informed.get(&parent.0) {
                        Some(&pi) if nodes[pi].informed_at < slot => (
                            nodes[pi].informed_at,
                            nodes[pi].depth,
                            nodes[pi].attribution,
                        ),
                        _ => {
                            violations.push(Violation::OrphanNode {
                                packet: p,
                                node: child,
                                parent,
                                slot,
                            });
                            continue;
                        }
                    }
                };
                let sched = schedules.get(child.index()).ok_or_else(|| {
                    ForensicsError(format!("node {child} informed but has no schedule"))
                })?;
                let hop = attribute_hop(
                    parent_ready,
                    slot,
                    |s| sched.is_active(s),
                    |s| failures.get(&(child.0, p, s)).copied(),
                );
                let mut attribution = parent_attr;
                attribution.merge(&hop);
                let delay = slot.saturating_sub(pushed);
                if attribution.total() != delay {
                    violations.push(Violation::AttributionMismatch {
                        packet: p,
                        node: child,
                        attributed: attribution.total(),
                        delay,
                    });
                }

                // Corollary 1: FCFS-earlier packets this relay served
                // strictly between p's arrival (end of `slot`) and its
                // first service of p. Hard on oracle runs — the bound
                // belongs to the paper's structured pipeline — advisory
                // under heuristic MACs (see module docs).
                let blocking = serves.get(&(child.0, p)).map(|ss| {
                    let first_serve = ss.iter().copied().min().expect("non-empty");
                    let my_pos = arrival_pos[&(child.0, p)];
                    let depth = arrival_list[&child.0][..my_pos]
                        .iter()
                        .filter(|&&q| {
                            q != p
                                && serves.get(&(child.0, q)).is_some_and(|qs| {
                                    qs.iter().any(|&s| s > slot && s < first_serve)
                                })
                        })
                        .count() as u32;
                    if depth > bound {
                        if oracle {
                            violations.push(Violation::BlockingDepthExceeded {
                                packet: p,
                                node: child,
                                depth,
                                bound,
                            });
                        } else {
                            advisories.push(format!(
                                "packet {p}: relay {child} blocked by {depth} packets — \
                                 Corollary 1's pipeline bound m - 1 = {bound} holds for the \
                                 oracle schedule; heuristic MAC relays can exceed it"
                            ));
                        }
                    }
                    depth
                });

                let depth = parent_depth + 1;
                tree_depth = tree_depth.max(depth);
                max_blocking = max_blocking.max(blocking.unwrap_or(0));
                pkt_attr.merge(&attribution);
                informed.insert(child.0, nodes.len());
                nodes.push(NodeForensics {
                    node: child,
                    parent,
                    via,
                    informed_at: slot,
                    depth,
                    delay,
                    attribution,
                    blocking,
                });
            }

            // Critical path: source-rooted chain of the covering node.
            let covered_entry = covered.get(&p).copied();
            let mut critical_path = Vec::new();
            let mut coverage_attribution = None;
            if let Some((_, cnode)) = covered_entry {
                let mut cursor = Some(cnode);
                while let Some(n) = cursor {
                    match informed.get(&n.0) {
                        Some(&i) => {
                            let nf = &nodes[i];
                            critical_path.push(PathHop {
                                node: nf.node,
                                slot: nf.informed_at,
                                via: nf.via,
                            });
                            cursor = (nf.parent != origin).then_some(nf.parent);
                        }
                        None => {
                            // Chain broken — already reported as an
                            // OrphanNode/DuplicateParent violation.
                            critical_path.clear();
                            cursor = None;
                        }
                    }
                    if critical_path.len() > n_nodes {
                        critical_path.clear();
                        break;
                    }
                }
                critical_path.reverse();
                coverage_attribution = informed.get(&cnode.0).map(|&i| nodes[i].attribution);
            }

            if tree_depth > m {
                advisories.push(format!(
                    "packet {p}: tree depth {tree_depth} exceeds the compact-model m = {m} \
                     (expected on real topologies whose diameter beats the complete-graph model)"
                ));
            }

            packets.push(PacketForensics {
                packet: p,
                origin,
                pushed_at: pushed,
                covered_at: covered_entry.map(|(s, _)| s),
                nodes,
                attribution: pkt_attr,
                coverage_attribution,
                critical_path,
                tree_depth,
                max_blocking,
            });
        }

        // --- aggregates --------------------------------------------------
        let mut totals = DelayAttribution::default();
        let mut coverage_totals = DelayAttribution::default();
        let mut delays: Vec<u64> = Vec::new();
        let mut max_tree_depth = 0;
        let mut max_blocking = 0;
        for pf in &packets {
            totals.merge(&pf.attribution);
            if let Some(ca) = &pf.coverage_attribution {
                coverage_totals.merge(ca);
            }
            if let Some(d) = pf.flooding_delay() {
                delays.push(d);
            }
            max_tree_depth = max_tree_depth.max(pf.tree_depth);
            max_blocking = max_blocking.max(pf.max_blocking);
        }
        let mean_flooding_delay =
            (!delays.is_empty()).then(|| delays.iter().sum::<u64>() as f64 / delays.len() as f64);

        Ok(ForensicsReport {
            n_nodes,
            n_sensors,
            m,
            blocking_bound: bound,
            oracle,
            packets,
            totals,
            coverage_totals,
            mean_flooding_delay,
            max_tree_depth,
            max_blocking,
            duplicate_deliveries: dup_delivered,
            duplicate_overhears: dup_overheard,
            violations,
            advisories,
        })
    }

    /// Whether every hard theory check passed.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Render the full report as a JSON value (schema documented in
    /// `EXPERIMENTS.md`).
    pub fn to_value(&self) -> Value {
        let path_value = |path: &[PathHop]| {
            Value::Array(
                path.iter()
                    .map(|h| {
                        Value::Object(vec![
                            ("node".into(), Value::UInt(h.node.0 as u64)),
                            ("slot".into(), Value::UInt(h.slot)),
                            ("via".into(), Value::Str(h.via.label().into())),
                        ])
                    })
                    .collect(),
            )
        };
        let opt_u64 = |v: Option<u64>| v.map_or(Value::Null, Value::UInt);
        let packets = self
            .packets
            .iter()
            .map(|pf| {
                let nodes = pf
                    .nodes
                    .iter()
                    .map(|nf| {
                        Value::Object(vec![
                            ("node".into(), Value::UInt(nf.node.0 as u64)),
                            ("parent".into(), Value::UInt(nf.parent.0 as u64)),
                            ("via".into(), Value::Str(nf.via.label().into())),
                            ("informed_at".into(), Value::UInt(nf.informed_at)),
                            ("depth".into(), Value::UInt(nf.depth as u64)),
                            ("delay".into(), Value::UInt(nf.delay)),
                            (
                                "blocking".into(),
                                nf.blocking.map_or(Value::Null, |b| Value::UInt(b as u64)),
                            ),
                            ("attribution".into(), nf.attribution.to_value()),
                        ])
                    })
                    .collect();
                Value::Object(vec![
                    ("packet".into(), Value::UInt(pf.packet as u64)),
                    ("origin".into(), Value::UInt(pf.origin.0 as u64)),
                    ("pushed_at".into(), Value::UInt(pf.pushed_at)),
                    ("covered_at".into(), opt_u64(pf.covered_at)),
                    ("flooding_delay".into(), opt_u64(pf.flooding_delay())),
                    ("informed".into(), Value::UInt(pf.nodes.len() as u64)),
                    ("tree_depth".into(), Value::UInt(pf.tree_depth as u64)),
                    ("max_blocking".into(), Value::UInt(pf.max_blocking as u64)),
                    ("attribution".into(), pf.attribution.to_value()),
                    (
                        "coverage_attribution".into(),
                        pf.coverage_attribution
                            .as_ref()
                            .map_or(Value::Null, DelayAttribution::to_value),
                    ),
                    ("critical_path".into(), path_value(&pf.critical_path)),
                    ("nodes".into(), Value::Array(nodes)),
                ])
            })
            .collect();
        Value::Object(vec![
            ("n_nodes".into(), Value::UInt(self.n_nodes as u64)),
            ("n_sensors".into(), Value::UInt(self.n_sensors as u64)),
            ("m".into(), Value::UInt(self.m as u64)),
            (
                "blocking_bound".into(),
                Value::UInt(self.blocking_bound as u64),
            ),
            ("oracle".into(), Value::Bool(self.oracle)),
            (
                "mean_flooding_delay".into(),
                self.mean_flooding_delay.map_or(Value::Null, Value::Float),
            ),
            ("attribution_totals".into(), self.totals.to_value()),
            (
                "coverage_attribution_totals".into(),
                self.coverage_totals.to_value(),
            ),
            (
                "max_tree_depth".into(),
                Value::UInt(self.max_tree_depth as u64),
            ),
            ("max_blocking".into(), Value::UInt(self.max_blocking as u64)),
            (
                "duplicate_deliveries".into(),
                Value::UInt(self.duplicate_deliveries),
            ),
            (
                "duplicate_overhears".into(),
                Value::UInt(self.duplicate_overhears),
            ),
            (
                "violations".into(),
                Value::Array(
                    self.violations
                        .iter()
                        .map(|v| Value::Str(v.describe()))
                        .collect(),
                ),
            ),
            (
                "advisories".into(),
                Value::Array(
                    self.advisories
                        .iter()
                        .map(|a| Value::Str(a.clone()))
                        .collect(),
                ),
            ),
            ("packets".into(), Value::Array(packets)),
        ])
    }

    /// Pretty-printed JSON report.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(&self.to_value()).expect("forensics report serializes")
    }

    /// Human-readable terminal summary: headline, attribution
    /// histograms, top-`k` critical paths, and the theory-check result.
    pub fn summary(&self, top_k: usize) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "flood forensics: {} nodes ({} sensors), {} packets, m = {}, blocking bound {} ({})",
            self.n_nodes,
            self.n_sensors,
            self.packets.len(),
            self.m,
            self.blocking_bound,
            if self.oracle {
                "oracle run: Corollary 1 enforced"
            } else {
                "heuristic MAC: Corollary 1 advisory"
            },
        );
        match self.mean_flooding_delay {
            Some(d) => {
                let _ = writeln!(out, "mean flooding delay: {d:.2} slots");
            }
            None => {
                let _ = writeln!(out, "mean flooding delay: n/a (no packet covered)");
            }
        }

        let histogram = |out: &mut String, title: &str, attr: &DelayAttribution| {
            let total = attr.total().max(1);
            let _ = writeln!(out, "{title} ({} slots):", attr.total());
            for (label, v) in attr.components() {
                let pct = 100.0 * v as f64 / total as f64;
                let bar = "#".repeat((pct / 2.5).round() as usize);
                let _ = writeln!(out, "  {label:<11} {v:>10}  {pct:5.1}%  {bar}");
            }
        };
        histogram(
            &mut out,
            "delay attribution, all informed nodes",
            &self.totals,
        );
        histogram(
            &mut out,
            "delay attribution, critical paths",
            &self.coverage_totals,
        );

        let _ = writeln!(
            out,
            "duplicates: {} delivered + {} overheard (energy only, no tree edges)",
            self.duplicate_deliveries, self.duplicate_overhears
        );
        let _ = writeln!(
            out,
            "max tree depth {} (compact-model m = {}), max blocking depth {} (bound {})",
            self.max_tree_depth, self.m, self.max_blocking, self.blocking_bound
        );

        let mut by_delay: Vec<&PacketForensics> = self
            .packets
            .iter()
            .filter(|pf| pf.flooding_delay().is_some())
            .collect();
        by_delay.sort_by_key(|pf| std::cmp::Reverse(pf.flooding_delay()));
        let _ = writeln!(out, "top {} critical paths:", top_k.min(by_delay.len()));
        for pf in by_delay.iter().take(top_k) {
            let mut path = format!("{}", pf.origin);
            for h in &pf.critical_path {
                let tag = match h.via {
                    Via::Delivery => 'd',
                    Via::Overhear => 'o',
                };
                let _ = write!(path, " -[{tag}@{}]-> {}", h.slot, h.node);
            }
            let _ = writeln!(
                out,
                "  packet {} (delay {}, depth {}): {}",
                pf.packet,
                pf.flooding_delay().expect("filtered"),
                pf.critical_path.len(),
                path
            );
        }

        if self.violations.is_empty() {
            let _ = writeln!(out, "theory checks: OK (no violations)");
        } else {
            let _ = writeln!(out, "theory checks: {} VIOLATIONS", self.violations.len());
            for v in &self.violations {
                let _ = writeln!(out, "  !! {}", v.describe());
            }
        }
        for a in &self.advisories {
            let _ = writeln!(out, "  note: {a}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldcf_net::NodeId;

    fn sched(node: u32, period: u32, offsets: &[u32]) -> Vec<SimEvent> {
        offsets
            .iter()
            .map(|&offset| SimEvent::ScheduleSlot {
                slot: 0,
                node: NodeId(node),
                period,
                offset,
            })
            .collect()
    }

    fn delivered(slot: u64, sender: u32, receiver: u32, packet: PacketId, fresh: bool) -> SimEvent {
        SimEvent::Delivered {
            slot,
            sender: NodeId(sender),
            receiver: NodeId(receiver),
            packet,
            fresh,
        }
    }

    fn tx(slot: u64, sender: u32, receiver: u32, packet: PacketId) -> SimEvent {
        SimEvent::TxAttempt {
            slot,
            sender: NodeId(sender),
            receiver: NodeId(receiver),
            packet,
            bypass_mac: false,
        }
    }

    /// Source 0, sensors 1 and 2 in a line, always-on schedules: push
    /// at 1, node 1 informed at 1, node 2 at 3 (one loss at 2).
    fn line_trace() -> Vec<SimEvent> {
        let mut ev = Vec::new();
        for n in 0..3 {
            ev.extend(sched(n, 1, &[0]));
        }
        ev.push(tx(1, 0, 1, 0));
        ev.push(delivered(1, 0, 1, 0, true));
        ev.push(tx(2, 1, 2, 0));
        ev.push(SimEvent::LinkLoss {
            slot: 2,
            sender: NodeId(1),
            receiver: NodeId(2),
            packet: 0,
        });
        ev.push(tx(3, 1, 2, 0));
        ev.push(delivered(3, 1, 2, 0, true));
        ev.push(SimEvent::CoverageReached {
            slot: 3,
            packet: 0,
            holders: 2,
        });
        ev
    }

    #[test]
    fn reconstructs_a_line_flood() {
        let r = ForensicsReport::from_events(&line_trace()).unwrap();
        assert!(r.is_clean(), "{:?}", r.violations);
        assert_eq!(r.n_nodes, 3);
        assert_eq!(r.n_sensors, 2);
        let pf = &r.packets[0];
        assert_eq!(pf.pushed_at, 1);
        assert_eq!(pf.covered_at, Some(3));
        assert_eq!(pf.nodes.len(), 2);

        // Node 1: informed at the push slot, delay 0.
        let n1 = &pf.nodes[0];
        assert_eq!((n1.node, n1.parent, n1.depth), (NodeId(1), NodeId(0), 1));
        assert_eq!(n1.delay, 0);
        assert_eq!(n1.attribution.total(), 0);

        // Node 2: delay 2 = one link-loss slot + the rendezvous slot.
        let n2 = &pf.nodes[1];
        assert_eq!((n2.node, n2.parent, n2.depth), (NodeId(2), NodeId(1), 2));
        assert_eq!(n2.delay, 2);
        assert_eq!(n2.attribution.link_loss, 1);
        assert_eq!(n2.attribution.sleep_wait, 1);
        assert_eq!(n2.attribution.total(), 2);

        // Critical path reaches the covering node through node 1.
        assert_eq!(
            pf.critical_path.iter().map(|h| h.node).collect::<Vec<_>>(),
            vec![NodeId(1), NodeId(2)]
        );
        assert_eq!(pf.coverage_attribution.unwrap().total(), 2);
        assert_eq!(r.mean_flooding_delay, Some(2.0));
        assert_eq!(pf.tree_depth, 2);
    }

    #[test]
    fn sleep_wait_dominates_duty_cycled_hops() {
        // Node 1 active only at slot 9 of a 10-slot period: push at 1
        // (to the always-on node 2), delivery to node 1 at 9 -> 8 slots
        // of delay, mostly sleep-wait.
        let mut ev = Vec::new();
        ev.extend(sched(0, 10, &[0]));
        ev.extend(sched(1, 10, &[9]));
        ev.extend(sched(2, 10, &(0..10).collect::<Vec<_>>()));
        ev.push(tx(1, 0, 2, 0));
        ev.push(delivered(1, 0, 2, 0, true));
        ev.push(SimEvent::Mistimed {
            slot: 5,
            sender: NodeId(0),
            receiver: NodeId(1),
            packet: 0,
        });
        ev.push(tx(9, 0, 1, 0));
        ev.push(delivered(9, 0, 1, 0, true));
        ev.push(SimEvent::CoverageReached {
            slot: 9,
            packet: 0,
            holders: 2,
        });
        let r = ForensicsReport::from_events(&ev).unwrap();
        assert!(r.is_clean(), "{:?}", r.violations);
        let n1 = r.packets[0]
            .nodes
            .iter()
            .find(|n| n.node == NodeId(1))
            .unwrap();
        assert_eq!(n1.delay, 8);
        // Slot 5 carries the mistimed failure (sender-side energy was
        // spent), classified link_loss even though node 1 was dormant.
        assert_eq!(n1.attribution.link_loss, 1);
        assert_eq!(n1.attribution.sleep_wait, 7);
        assert_eq!(n1.attribution.total(), 8);
    }

    #[test]
    fn duplicates_count_but_never_create_edges() {
        let mut ev = line_trace();
        // Forced duplicates: node 1 hears packet 0 twice more.
        ev.push(delivered(5, 0, 1, 0, false));
        ev.push(SimEvent::Overheard {
            slot: 5,
            sender: NodeId(1),
            receiver: NodeId(2),
            packet: 0,
            fresh: false,
        });
        let r = ForensicsReport::from_events(&ev).unwrap();
        assert!(r.is_clean(), "{:?}", r.violations);
        assert_eq!(r.duplicate_deliveries, 1);
        assert_eq!(r.duplicate_overhears, 1);
        // Still exactly one parent per informed node.
        assert_eq!(r.packets[0].nodes.len(), 2);
    }

    #[test]
    fn double_fresh_copy_is_a_violation() {
        let mut ev = line_trace();
        ev.push(delivered(7, 0, 1, 0, true)); // engine would never emit this
        let r = ForensicsReport::from_events(&ev).unwrap();
        assert!(matches!(
            r.violations[..],
            [Violation::DuplicateParent {
                packet: 0,
                node: NodeId(1),
                slot: 7
            }]
        ));
    }

    #[test]
    fn orphan_parent_is_a_violation() {
        let mut ev: Vec<SimEvent> = (0..4).flat_map(|n| sched(n, 1, &[0])).collect();
        ev.push(tx(1, 0, 1, 0));
        ev.push(delivered(1, 0, 1, 0, true));
        // Node 3 claims a parent (node 2) that was never informed.
        ev.push(delivered(4, 2, 3, 0, true));
        let r = ForensicsReport::from_events(&ev).unwrap();
        assert!(matches!(
            r.violations[..],
            [Violation::OrphanNode {
                packet: 0,
                node: NodeId(3),
                parent: NodeId(2),
                slot: 4
            }]
        ));
    }

    #[test]
    fn blocking_counts_fcfs_predecessors_only() {
        // Node 1 receives packets 0 then 1; it serves packet 0 at slots
        // 3 and 4, then first serves packet 1 at slot 5: packet 1 was
        // blocked by one FCFS predecessor.
        let mut ev: Vec<SimEvent> = (0..3).flat_map(|n| sched(n, 1, &[0])).collect();
        ev.push(tx(1, 0, 1, 0));
        ev.push(delivered(1, 0, 1, 0, true));
        ev.push(tx(2, 0, 1, 1));
        ev.push(delivered(2, 0, 1, 1, true));
        for s in [3, 4] {
            ev.push(tx(s, 1, 2, 0));
            ev.push(SimEvent::LinkLoss {
                slot: s,
                sender: NodeId(1),
                receiver: NodeId(2),
                packet: 0,
            });
        }
        ev.push(tx(5, 1, 2, 1));
        ev.push(delivered(5, 1, 2, 1, true));
        let r = ForensicsReport::from_events(&ev).unwrap();
        let p1 = &r.packets[1];
        let n1 = p1.nodes.iter().find(|n| n.node == NodeId(1)).unwrap();
        assert_eq!(n1.blocking, Some(1), "blocked by packet 0");
        let p0 = &r.packets[0];
        let n1p0 = p0.nodes.iter().find(|n| n.node == NodeId(1)).unwrap();
        assert_eq!(n1p0.blocking, Some(0), "packet 0 went first");
        // Queue blocking shows up in packet 1's attribution at node 2
        // only via the failure slots charged to packet 0's loss; node
        // 2's packet-1 window slots 3..=5 are loss-free for packet 1,
        // awake, non-final -> queue_block.
        let n2p1 = p1.nodes.iter().find(|n| n.node == NodeId(2)).unwrap();
        assert_eq!(n2p1.attribution.queue_block, 2);
        assert_eq!(n2p1.attribution.total(), n2p1.delay);
    }

    #[test]
    fn blocking_bound_is_hard_for_oracle_runs_and_advisory_otherwise() {
        // 4 nodes -> 3 sensors -> m = 2, bound = 1. Relay 1 receives
        // packets 0, 1, 2 back to back, then serves 0 and 1 before
        // first serving 2: packet 2 is blocked by 2 > 1 predecessors.
        let build = |bypass_mac: bool| {
            let mut ev: Vec<SimEvent> = (0..4).flat_map(|n| sched(n, 1, &[0])).collect();
            for p in 0..3 {
                ev.push(SimEvent::TxAttempt {
                    slot: 1 + p as u64,
                    sender: NodeId(0),
                    receiver: NodeId(1),
                    packet: p,
                    bypass_mac,
                });
                ev.push(delivered(1 + p as u64, 0, 1, p, true));
            }
            for (s, p) in [(4, 0), (5, 1), (6, 2)] {
                ev.push(tx(s, 1, 2, p));
                ev.push(delivered(s, 1, 2, p, true));
            }
            ev
        };
        let heuristic = ForensicsReport::from_events(&build(false)).unwrap();
        assert!(heuristic.is_clean(), "{:?}", heuristic.violations);
        assert!(!heuristic.oracle);
        assert!(
            heuristic
                .advisories
                .iter()
                .any(|a| a.contains("blocked by 2")),
            "{:?}",
            heuristic.advisories
        );
        assert_eq!(heuristic.max_blocking, 2);

        let oracle = ForensicsReport::from_events(&build(true)).unwrap();
        assert!(oracle.oracle);
        assert!(matches!(
            oracle.violations[..],
            [Violation::BlockingDepthExceeded {
                packet: 2,
                node: NodeId(1),
                depth: 2,
                bound: 1
            }]
        ));
    }

    #[test]
    fn traces_without_schedules_are_rejected() {
        let ev = [tx(1, 0, 1, 0), delivered(1, 0, 1, 0, true)];
        let err = ForensicsReport::from_events(&ev).unwrap_err();
        assert!(err.to_string().contains("schedule_slot"), "{err}");
    }

    #[test]
    fn json_report_round_trips_through_serde_json(// sanity: the report renders and contains the headline keys
    ) {
        let r = ForensicsReport::from_events(&line_trace()).unwrap();
        let json = r.to_json_pretty();
        for key in [
            "attribution_totals",
            "coverage_attribution_totals",
            "critical_path",
            "blocking_bound",
            "sleep_wait",
            "queue_block",
            "violations",
        ] {
            assert!(json.contains(key), "report lacks {key}: {json}");
        }
        let summary = r.summary(3);
        assert!(summary.contains("theory checks: OK"), "{summary}");
        assert!(summary.contains("critical paths"), "{summary}");
    }
}
