//! Replay of slot-level event streams (`ldcf-obs` JSONL traces).
//!
//! [`ReplayReport`] reconstructs the per-packet lifecycle and the
//! aggregate counters of a simulation run purely from its event stream,
//! using the same first-occurrence rules as the engine's `SimReport`:
//!
//! * `pushed_at[p]` — slot of the first `TxAttempt` by the source for
//!   packet `p` (mistimed source transmissions never reach the MAC, so
//!   they do not push).
//! * `covered_at[p]` — slot of the `CoverageReached` event (emitted
//!   exactly once per packet).
//! * `transmissions` — committed `TxAttempt`s plus `Mistimed` ones;
//!   `transmission_failures` — `LinkLoss + Collision + ReceiverBusy +
//!   Mistimed`; `overhears` counts only *fresh* overheard copies.
//!
//! On a complete trace, [`ReplayReport::mean_flooding_delay`] equals
//! `SimReport::mean_flooding_delay()` exactly — that identity is the
//! correctness contract of the tracing pipeline (checked end-to-end in
//! `ldcf-bench`'s replay tests).

use ldcf_net::{NodeId, SOURCE};
use ldcf_obs::SimEvent;

/// Per-packet lifecycle reconstructed from an event stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PacketReplay {
    /// Slot of the source's first committed transmission of the packet.
    pub pushed_at: Option<u64>,
    /// Slot at which the packet reached its coverage target.
    pub covered_at: Option<u64>,
    /// Fresh dedicated deliveries.
    pub deliveries: u32,
    /// Fresh overheard copies.
    pub overhears: u32,
    /// Failed intended transmissions (loss + collision + busy + mistimed).
    pub failures: u32,
}

impl PacketReplay {
    /// Flooding delay in slots (push → coverage); `None` if either end
    /// of the interval is missing. Mirrors `PacketStats::flooding_delay`.
    pub fn flooding_delay(&self) -> Option<u64> {
        Some(self.covered_at?.saturating_sub(self.pushed_at?))
    }
}

/// Aggregate counters and per-packet records recomputed from events.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ReplayReport {
    /// Per-packet records, indexed by sequence number.
    pub packets: Vec<PacketReplay>,
    /// Slots replayed (`SlotEnd` count).
    pub slots_elapsed: u64,
    /// Committed transmissions plus mistimed ones.
    pub transmissions: u64,
    /// Loss + collision + receiver-busy + mistimed.
    pub transmission_failures: u64,
    /// Failures that were collisions specifically.
    pub collisions: u64,
    /// Fresh overheard receptions.
    pub overhears: u64,
    /// CSMA deferrals.
    pub deferrals: u64,
    /// Mistimed-rendezvous transmissions.
    pub mistimed: u64,
}

/// Incremental [`ReplayReport`] aggregation: absorbs one event at a
/// time, so arbitrarily long traces replay in constant memory (plus the
/// per-packet table). [`ReplayReport::from_source`] drives it over any
/// fallible event iterator.
#[derive(Clone, Debug, Default)]
pub struct ReplayBuilder {
    report: ReplayReport,
    // Per-packet flood origin: the default source unless the trace
    // carries an explicit `packet_injected` (multi-source/periodic
    // workloads). A packet's push slot is its origin's first attempt.
    origins: std::collections::HashMap<ldcf_net::PacketId, NodeId>,
}

impl ReplayBuilder {
    /// Fold one event into the running aggregates.
    pub fn absorb(&mut self, ev: &SimEvent) {
        let r = &mut self.report;
        let origins = &mut self.origins;
        {
            match *ev {
                SimEvent::TxAttempt {
                    slot,
                    sender,
                    packet,
                    ..
                } => {
                    r.transmissions += 1;
                    let origin = origins.get(&packet).copied().unwrap_or(SOURCE);
                    let st = r.packet_mut(packet);
                    if sender == origin && st.pushed_at.is_none() {
                        st.pushed_at = Some(slot);
                    }
                }
                SimEvent::Delivered { packet, fresh, .. } => {
                    if fresh {
                        r.packet_mut(packet).deliveries += 1;
                    }
                }
                SimEvent::Overheard { packet, fresh, .. } => {
                    if fresh {
                        r.overhears += 1;
                        r.packet_mut(packet).overhears += 1;
                    }
                }
                SimEvent::LinkLoss { packet, .. } | SimEvent::ReceiverBusy { packet, .. } => {
                    r.transmission_failures += 1;
                    r.packet_mut(packet).failures += 1;
                }
                SimEvent::Collision { packet, .. } => {
                    r.transmission_failures += 1;
                    r.collisions += 1;
                    r.packet_mut(packet).failures += 1;
                }
                SimEvent::Mistimed { packet, .. } => {
                    r.transmissions += 1;
                    r.transmission_failures += 1;
                    r.mistimed += 1;
                    r.packet_mut(packet).failures += 1;
                }
                SimEvent::Deferred { .. } => r.deferrals += 1,
                SimEvent::CoverageReached { slot, packet, .. } => {
                    let st = r.packet_mut(packet);
                    if st.covered_at.is_none() {
                        st.covered_at = Some(slot);
                    }
                }
                SimEvent::SlotEnd { .. } => r.slots_elapsed += 1,
                // Fault-injection annotations: a BurstLoss rides with a
                // LinkLoss already counted, and churn/retry events have
                // no SimReport counterpart in this replay.
                SimEvent::BurstLoss { .. }
                | SimEvent::NodeCrashed { .. }
                | SimEvent::NodeRecovered { .. }
                | SimEvent::SourceRetry { .. } => {}
                // Static schedule metadata; no counter corresponds.
                SimEvent::ScheduleSlot { .. } => {}
                SimEvent::PacketInjected { node, packet, .. } => {
                    origins.insert(packet, node);
                    r.packet_mut(packet);
                }
            }
        }
    }

    /// The finished report.
    pub fn finish(self) -> ReplayReport {
        self.report
    }
}

impl ReplayReport {
    /// Replay an event stream. The packet table is sized by the largest
    /// packet id seen, so partial traces replay to partial reports.
    pub fn from_events(events: &[SimEvent]) -> Self {
        let mut b = ReplayBuilder::default();
        for ev in events {
            b.absorb(ev);
        }
        b.finish()
    }

    /// Replay any fallible event stream (a [`ldcf_obs::JsonlReader`], a
    /// binary-trace iterator, ...) without ever materialising the full
    /// event vector.
    pub fn from_source<I, E>(events: I) -> Result<Self, E>
    where
        I: IntoIterator<Item = Result<SimEvent, E>>,
    {
        let mut b = ReplayBuilder::default();
        for ev in events {
            b.absorb(&ev?);
        }
        Ok(b.finish())
    }

    /// Parse a JSONL trace (one event per line) and replay it
    /// (streaming, line by line).
    pub fn from_jsonl(text: &str) -> Result<Self, serde::Error> {
        Self::from_source(ldcf_obs::JsonlReader::new(text.as_bytes()))
    }

    fn packet_mut(&mut self, packet: u32) -> &mut PacketReplay {
        let i = packet as usize;
        if i >= self.packets.len() {
            self.packets.resize(i + 1, PacketReplay::default());
        }
        &mut self.packets[i]
    }

    /// Per-packet flooding delays, indexed by sequence number — the
    /// Fig. 9 distribution.
    pub fn delays(&self) -> Vec<Option<u64>> {
        self.packets.iter().map(|p| p.flooding_delay()).collect()
    }

    /// Mean flooding delay over covered packets; `None` if none covered.
    /// Bit-for-bit the same arithmetic as `SimReport::mean_flooding_delay`
    /// (sum of integer delays divided by count), so a full trace replays
    /// to the exact same figure.
    pub fn mean_flooding_delay(&self) -> Option<f64> {
        let delays: Vec<u64> = self
            .packets
            .iter()
            .filter_map(|p| p.flooding_delay())
            .collect();
        (!delays.is_empty()).then(|| delays.iter().sum::<u64>() as f64 / delays.len() as f64)
    }

    /// Fraction of packets that reached coverage.
    pub fn coverage_success_rate(&self) -> f64 {
        if self.packets.is_empty() {
            return 0.0;
        }
        self.packets
            .iter()
            .filter(|p| p.covered_at.is_some())
            .count() as f64
            / self.packets.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldcf_net::NodeId;

    fn tx(slot: u64, sender: u32, packet: u32) -> SimEvent {
        SimEvent::TxAttempt {
            slot,
            sender: NodeId(sender),
            receiver: NodeId(sender + 1),
            packet,
            bypass_mac: false,
        }
    }

    #[test]
    fn push_is_first_source_tx_only() {
        let events = [
            tx(3, 1, 0), // relay transmission: not a push
            tx(5, 0, 0), // source: push at 5
            tx(9, 0, 0), // repeat: ignored
            SimEvent::CoverageReached {
                slot: 105,
                packet: 0,
                holders: 4,
            },
        ];
        let r = ReplayReport::from_events(&events);
        assert_eq!(r.packets[0].pushed_at, Some(5));
        assert_eq!(r.packets[0].covered_at, Some(105));
        assert_eq!(r.packets[0].flooding_delay(), Some(100));
        assert_eq!(r.mean_flooding_delay(), Some(100.0));
        assert_eq!(r.transmissions, 3);
    }

    #[test]
    fn mistimed_counts_as_transmission_and_failure_but_not_push() {
        let events = [
            SimEvent::Mistimed {
                slot: 2,
                sender: NodeId(0),
                receiver: NodeId(1),
                packet: 0,
            },
            tx(7, 0, 0),
        ];
        let r = ReplayReport::from_events(&events);
        assert_eq!(
            r.packets[0].pushed_at,
            Some(7),
            "mistimed tx never reaches the MAC"
        );
        assert_eq!(r.transmissions, 2);
        assert_eq!(r.transmission_failures, 1);
        assert_eq!(r.mistimed, 1);
    }

    #[test]
    fn only_fresh_copies_count() {
        let dup = |fresh| SimEvent::Overheard {
            slot: 4,
            sender: NodeId(1),
            receiver: NodeId(2),
            packet: 0,
            fresh,
        };
        let r = ReplayReport::from_events(&[dup(true), dup(false)]);
        assert_eq!(r.overhears, 1);
        assert_eq!(r.packets[0].overhears, 1);
    }

    #[test]
    fn slot_end_drives_slots_elapsed() {
        let events: Vec<SimEvent> = (0..5)
            .map(|s| SimEvent::SlotEnd {
                slot: s,
                queued: 0,
                active_nodes: 1,
            })
            .collect();
        let r = ReplayReport::from_events(&events);
        assert_eq!(r.slots_elapsed, 5);
        assert!(r.packets.is_empty());
        assert_eq!(r.mean_flooding_delay(), None);
    }

    #[test]
    fn jsonl_roundtrip_replays() {
        let events = [
            tx(1, 0, 0),
            SimEvent::CoverageReached {
                slot: 11,
                packet: 0,
                holders: 3,
            },
        ];
        let text: String = events
            .iter()
            .map(|e| serde_json::to_string(e).unwrap() + "\n")
            .collect();
        let r = ReplayReport::from_jsonl(&text).unwrap();
        assert_eq!(r, ReplayReport::from_events(&events));
        assert_eq!(r.mean_flooding_delay(), Some(10.0));
    }
}
