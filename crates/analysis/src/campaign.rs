//! Campaign aggregation: joining simulated cells against the paper's
//! delay-limit theory, with streaming per-group statistics.
//!
//! The campaign runner (`ldcf-bench`) executes one simulation per
//! matrix cell (protocol × duty × seed) and summarises each into a
//! [`CellSummary`]. This module owns the *analysis* half: the theory
//! prediction for a cell's operating point (Theorem 1's `E[FDL]` at the
//! duty-equivalent period), the per-(protocol, duty) [`GroupStats`]
//! accumulators ([`OnlineStats`] moments plus a log-bucketed
//! [`StreamingHistogram`] for quantiles), the seed-paired
//! [`PairedStats`] protocol comparisons, and the [`CampaignStats`]
//! grid tying them together.
//!
//! Everything here streams: a cell is folded into O(1)-sized
//! accumulators and dropped, so thousand-seed campaigns use memory
//! independent of the seed count. Accumulators [`merge`]
//! (`CampaignStats::merge`) associatively; folding per-shard partials
//! in a fixed shard order makes every derived byte — `campaign.md`,
//! `campaign-stats.md`, the `statistics` block of `campaign.json` —
//! independent of the rayon worker count.
//!
//! The theory join deliberately uses the *duty-equivalent* period
//! `T_eff = round(1/duty)`: the theory's schedule model is one active
//! slot per period, so a node at duty `d` wakes as often as a
//! single-slot node with period `1/d`, whatever its actual `(T, active)`
//! decomposition. This keeps heterogeneous-period cells comparable to
//! homogeneous ones on the same row.

use crate::stats::{sign_test_two_sided, OnlineStats};
use ldcf_core::fdl;
use ldcf_obs::StreamingHistogram;
use serde::{Deserialize, Serialize, Value};

/// One executed campaign cell, as the runner summarises it.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CellSummary {
    /// Protocol name (runner vocabulary, e.g. `"opt"`, `"dbao"`, `"of"`).
    pub protocol: String,
    /// Duty ratio of the cell.
    pub duty: f64,
    /// Schedule/MAC seed of the cell.
    pub seed: u64,
    /// Sensor count of the scenario topology (excludes the source).
    pub n_sensors: u64,
    /// Packets flooded.
    pub packets: u32,
    /// Mean flooding delay over covered packets, in slots.
    pub mean_fdl: Option<f64>,
    /// Fraction of packets that reached the coverage target.
    pub coverage_rate: f64,
    /// Committed transmissions.
    pub transmissions: u64,
    /// Radio-active slots summed over nodes (the energy ledger's
    /// currency: wake slots + transmission slots).
    pub energy_active: u64,
    /// Slots the cell ran for.
    pub slots_elapsed: u64,
}

/// Duty-equivalent period `T_eff = round(1/duty)` (min 1).
fn t_eff(duty: f64) -> u32 {
    (1.0 / duty).round().max(1.0) as u32
}

/// Theorem 1's `E[FDL]` at a cell's operating point, in slots, using
/// the duty-equivalent period.
pub fn predicted_fdl(packets: u32, n_sensors: u64, duty: f64) -> f64 {
    fdl::fdl_expected(packets, n_sensors, t_eff(duty))
}

/// Theorem 2's `(lower, upper)` bounds at the same operating point.
pub fn predicted_fdl_bounds(packets: u32, n_sensors: u64, duty: f64) -> (f64, f64) {
    fdl::fdl_theorem2_bounds(packets, n_sensors, duty_period(duty))
}

/// Public alias of [`t_eff`] for callers that need the joined period.
pub fn duty_period(duty: f64) -> u32 {
    t_eff(duty)
}

/// Streaming statistics of one (protocol, duty) group, folded over
/// seeds. O(1) memory: four moment accumulators, one fixed-size
/// histogram, and counters.
#[derive(Clone, Debug, PartialEq)]
pub struct GroupStats {
    /// Protocol name.
    pub protocol: String,
    /// Duty ratio.
    pub duty: f64,
    /// Cells folded into this group (covered or not).
    pub cells: u64,
    /// Mean flooding delay over seeds — covered cells only.
    pub fdl: OnlineStats,
    /// Log-bucketed histogram of the cells' mean FDLs (rounded to
    /// whole slots), for p50/p95 without storing samples.
    pub fdl_hist: StreamingHistogram,
    /// Coverage success rate over all cells.
    pub coverage: OnlineStats,
    /// Committed transmissions over all cells.
    pub transmissions: OnlineStats,
    /// Radio-active slots over all cells.
    pub energy: OnlineStats,
    /// Cells whose mean FDL exceeded Theorem 2's hard worst case
    /// `T · FWL` — each one is a per-cell bound violation.
    pub worst_case_violations: u64,
    /// Packets per cell (from the first folded cell; a campaign's
    /// workload is homogeneous).
    packets: u32,
    /// Sensors per cell (ditto).
    n_sensors: u64,
}

/// Distribution-level theory conformance of one group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Conformance {
    /// Theorem 1's predicted mean lies inside the group's 95 % CI.
    pub theorem1_in_ci: bool,
    /// The 95 % CI overlaps Theorem 2's `[lower, upper]` band.
    pub theorem2_ci_overlap: bool,
    /// Cells that individually exceeded the hard worst case.
    pub worst_case_violations: u64,
}

impl GroupStats {
    /// An empty group for `(protocol, duty)`.
    pub fn new(protocol: &str, duty: f64) -> Self {
        Self {
            protocol: protocol.to_string(),
            duty,
            cells: 0,
            fdl: OnlineStats::new(),
            fdl_hist: StreamingHistogram::new(),
            coverage: OnlineStats::new(),
            transmissions: OnlineStats::new(),
            energy: OnlineStats::new(),
            worst_case_violations: 0,
            packets: 0,
            n_sensors: 0,
        }
    }

    /// Fold one cell in and drop it.
    pub fn record(&mut self, c: &CellSummary) {
        if self.cells == 0 {
            self.packets = c.packets;
            self.n_sensors = c.n_sensors;
        }
        self.cells += 1;
        self.coverage.record(c.coverage_rate);
        self.transmissions.record(c.transmissions as f64);
        self.energy.record(c.energy_active as f64);
        if let Some(f) = c.mean_fdl {
            self.fdl.record(f);
            self.fdl_hist.record(f.round() as u64);
            let wc = fdl::fdl_worst_case(c.packets, c.n_sensors, t_eff(c.duty)) as f64;
            if f > wc {
                self.worst_case_violations += 1;
            }
        }
    }

    /// Fold another partial of the *same* group in.
    pub fn merge(&mut self, other: &Self) {
        if other.cells == 0 {
            return;
        }
        if self.cells == 0 {
            self.packets = other.packets;
            self.n_sensors = other.n_sensors;
        }
        self.cells += other.cells;
        self.fdl.merge(&other.fdl);
        self.fdl_hist.merge(&other.fdl_hist);
        self.coverage.merge(&other.coverage);
        self.transmissions.merge(&other.transmissions);
        self.energy.merge(&other.energy);
        self.worst_case_violations += other.worst_case_violations;
    }

    /// Theorem 1 prediction for this group's operating point (`None`
    /// before any cell is folded).
    pub fn predicted(&self) -> Option<f64> {
        (self.cells > 0).then(|| predicted_fdl(self.packets, self.n_sensors, self.duty))
    }

    /// Theorem 2 bounds for this group's operating point.
    pub fn bounds(&self) -> Option<(f64, f64)> {
        (self.cells > 0).then(|| predicted_fdl_bounds(self.packets, self.n_sensors, self.duty))
    }

    /// Simulated over predicted mean delay.
    pub fn ratio(&self) -> Option<f64> {
        let pred = self.predicted()?;
        (self.fdl.count > 0).then(|| self.fdl.mean / pred)
    }

    /// Distribution-level conformance verdict. `None` until the group
    /// holds at least two covered cells (one sample pins no CI).
    pub fn conformance(&self) -> Option<Conformance> {
        let (lo, hi) = self.fdl.ci95()?;
        let pred = self.predicted()?;
        let (blo, bhi) = self.bounds()?;
        Some(Conformance {
            theorem1_in_ci: lo <= pred && pred <= hi,
            theorem2_ci_overlap: lo <= bhi && blo <= hi,
            worst_case_violations: self.worst_case_violations,
        })
    }
}

/// Seed-paired comparison of two protocols at one duty: both protocols
/// ran the *same* seeds, so their per-seed delay difference cancels
/// schedule luck. Folds the mean difference (with CI) and the
/// sign-flip counts for the exact sign test.
#[derive(Clone, Debug, PartialEq)]
pub struct PairedStats {
    /// First protocol (the minuend).
    pub protocol_a: String,
    /// Second protocol (the subtrahend).
    pub protocol_b: String,
    /// Duty ratio.
    pub duty: f64,
    /// Per-seed `FDL_a − FDL_b`, over seeds where both covered.
    pub diff: OnlineStats,
    /// Seeds where `a` was strictly slower.
    pub pos: u64,
    /// Seeds where `a` was strictly faster.
    pub neg: u64,
    /// Exact ties.
    pub ties: u64,
}

impl PairedStats {
    /// An empty pair for `(a, b)` at `duty`.
    pub fn new(protocol_a: &str, protocol_b: &str, duty: f64) -> Self {
        Self {
            protocol_a: protocol_a.to_string(),
            protocol_b: protocol_b.to_string(),
            duty,
            diff: OnlineStats::new(),
            pos: 0,
            neg: 0,
            ties: 0,
        }
    }

    /// Fold one common seed in. Skips the seed unless both cells
    /// covered (an uncovered cell has no delay to difference).
    pub fn record_pair(&mut self, a: &CellSummary, b: &CellSummary) {
        debug_assert_eq!(a.seed, b.seed, "paired cells must share a seed");
        let (Some(fa), Some(fb)) = (a.mean_fdl, b.mean_fdl) else {
            return;
        };
        let d = fa - fb;
        self.diff.record(d);
        if d > 0.0 {
            self.pos += 1;
        } else if d < 0.0 {
            self.neg += 1;
        } else {
            self.ties += 1;
        }
    }

    /// Fold another partial of the same pair in.
    pub fn merge(&mut self, other: &Self) {
        self.diff.merge(&other.diff);
        self.pos += other.pos;
        self.neg += other.neg;
        self.ties += other.ties;
    }

    /// Exact two-sided sign-test p-value over the non-tied seeds.
    pub fn sign_p(&self) -> Option<f64> {
        sign_test_two_sided(self.pos, self.neg)
    }

    /// Whether the sign test rejects "no difference" at α = 0.05.
    pub fn significant(&self) -> Option<bool> {
        self.sign_p().map(|p| p < 0.05)
    }
}

/// The full campaign grid: one [`GroupStats`] per (protocol, duty) in
/// matrix order (protocols outer), one [`PairedStats`] per unordered
/// protocol pair per duty. Partials of the same shape merge
/// element-wise, which is what the runner's shard reducer exploits.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignStats {
    /// Matrix protocols, in spec order.
    pub protocols: Vec<String>,
    /// Matrix duties, in spec order.
    pub duties: Vec<f64>,
    /// Seeds per cell in the matrix.
    pub seeds: u64,
    /// `protocols.len() × duties.len()` groups, protocol-outer.
    pub groups: Vec<GroupStats>,
    /// One entry per protocol pair `(i < j)` per duty, pair-outer.
    pub pairs: Vec<PairedStats>,
}

impl CampaignStats {
    /// An empty grid for the given matrix axes.
    pub fn new(protocols: &[String], duties: &[f64], seeds: u64) -> Self {
        let mut groups = Vec::with_capacity(protocols.len() * duties.len());
        for p in protocols {
            for &d in duties {
                groups.push(GroupStats::new(p, d));
            }
        }
        let mut pairs = Vec::new();
        for i in 0..protocols.len() {
            for j in i + 1..protocols.len() {
                for &d in duties {
                    pairs.push(PairedStats::new(&protocols[i], &protocols[j], d));
                }
            }
        }
        Self {
            protocols: protocols.to_vec(),
            duties: duties.to_vec(),
            seeds,
            groups,
            pairs,
        }
    }

    /// Index of the `(protocol, duty)` group.
    pub fn group_index(&self, p_idx: usize, d_idx: usize) -> usize {
        p_idx * self.duties.len() + d_idx
    }

    /// Index of the `(a < b, duty)` pair entry.
    fn pair_index(&self, a: usize, b: usize, d_idx: usize) -> usize {
        debug_assert!(a < b && b < self.protocols.len());
        // Pairs before (a, ·): sum of (P−1−i) for i < a.
        let p = self.protocols.len();
        let before = a * (2 * p - a - 1) / 2;
        (before + (b - a - 1)) * self.duties.len() + d_idx
    }

    /// Fold one seed's row of cells — `row[p_idx]` is protocol
    /// `protocols[p_idx]` at `duties[d_idx]`, `None` if the cell is
    /// unavailable — into the groups and every both-present pair.
    pub fn record_row(&mut self, d_idx: usize, row: &[Option<CellSummary>]) {
        assert_eq!(row.len(), self.protocols.len());
        for (p_idx, cell) in row.iter().enumerate() {
            if let Some(c) = cell {
                let g = self.group_index(p_idx, d_idx);
                self.groups[g].record(c);
            }
        }
        for a in 0..row.len() {
            for b in a + 1..row.len() {
                if let (Some(ca), Some(cb)) = (&row[a], &row[b]) {
                    let idx = self.pair_index(a, b, d_idx);
                    self.pairs[idx].record_pair(ca, cb);
                }
            }
        }
    }

    /// Merge a same-shape partial in, element-wise.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(self.protocols, other.protocols, "mismatched partials");
        assert_eq!(self.duties.len(), other.duties.len());
        for (g, o) in self.groups.iter_mut().zip(&other.groups) {
            g.merge(o);
        }
        for (p, o) in self.pairs.iter_mut().zip(&other.pairs) {
            p.merge(o);
        }
    }

    /// Render the classic campaign table joining simulated against
    /// predicted `E[FDL]` per (protocol, duty) group. Groups no cell
    /// reached are skipped.
    pub fn campaign_table(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "| protocol | duty | cells | sim E[FDL] | predicted E[FDL] | sim/pred | coverage | mean tx |\n",
        );
        out.push_str("|---|---|---|---|---|---|---|---|\n");
        for g in self.groups.iter().filter(|g| g.cells > 0) {
            let sim = if g.fdl.count > 0 {
                format!("{:.1}", g.fdl.mean)
            } else {
                "—".into()
            };
            let ratio = g.ratio().map_or("—".to_string(), |x| format!("{x:.2}"));
            out.push_str(&format!(
                "| {} | {:.3} | {} | {} | {:.1} | {} | {:.2} | {:.1} |\n",
                g.protocol,
                g.duty,
                g.cells,
                sim,
                g.predicted().expect("cells > 0"),
                ratio,
                g.coverage.mean,
                g.transmissions.mean,
            ));
        }
        out
    }

    /// Render the statistics tables (the body of `campaign-stats.md`):
    /// per-group 95 % confidence intervals with the Theorem 1/2
    /// conformance verdicts, then the seed-paired protocol comparisons.
    pub fn stats_markdown(&self) -> String {
        let fmt_ci = |ci: Option<(f64, f64)>| {
            ci.map_or("—".to_string(), |(lo, hi)| format!("[{lo:.2}, {hi:.2}]"))
        };
        let mut out = String::new();
        out.push_str("## Per-group statistics (95% CI over seeds)\n\n");
        out.push_str(
            "| protocol | duty | cells | covered | E[FDL] | 95% CI | p50 | p95 | T1 pred | in CI | T2 bounds | CI∩T2 | WC viol |\n",
        );
        out.push_str("|---|---|---|---|---|---|---|---|---|---|---|---|---|\n");
        for g in self.groups.iter().filter(|g| g.cells > 0) {
            let mean = if g.fdl.count > 0 {
                format!("{:.2}", g.fdl.mean)
            } else {
                "—".into()
            };
            let quant = |q: Option<u64>| q.map_or("—".to_string(), |v| v.to_string());
            let (blo, bhi) = g.bounds().expect("cells > 0");
            let verdict = |b: bool| if b { "yes" } else { "NO" };
            let (t1, t2) = g.conformance().map_or(("—", "—"), |c| {
                (verdict(c.theorem1_in_ci), verdict(c.theorem2_ci_overlap))
            });
            out.push_str(&format!(
                "| {} | {:.3} | {} | {} | {} | {} | {} | {} | {:.1} | {} | [{:.1}, {:.1}] | {} | {} |\n",
                g.protocol,
                g.duty,
                g.cells,
                g.fdl.count,
                mean,
                fmt_ci(g.fdl.ci95()),
                quant(g.fdl_hist.p50()),
                quant(g.fdl_hist.p95()),
                g.predicted().expect("cells > 0"),
                t1,
                blo,
                bhi,
                t2,
                g.worst_case_violations,
            ));
        }
        out.push_str("\n## Per-group resources (mean, 95% CI over seeds)\n\n");
        out.push_str(
            "| protocol | duty | coverage | 95% CI | energy (active slots) | 95% CI | tx | 95% CI |\n",
        );
        out.push_str("|---|---|---|---|---|---|---|---|\n");
        for g in self.groups.iter().filter(|g| g.cells > 0) {
            out.push_str(&format!(
                "| {} | {:.3} | {:.4} | {} | {:.1} | {} | {:.1} | {} |\n",
                g.protocol,
                g.duty,
                g.coverage.mean,
                fmt_ci(g.coverage.ci95()),
                g.energy.mean,
                fmt_ci(g.energy.ci95()),
                g.transmissions.mean,
                fmt_ci(g.transmissions.ci95()),
            ));
        }
        if !self.pairs.is_empty() {
            out.push_str("\n## Paired protocol comparisons (common seeds)\n\n");
            out.push_str(
                "| duty | Δ = A − B | n | mean Δ FDL | 95% CI | + / − / = | sign p | significant |\n",
            );
            out.push_str("|---|---|---|---|---|---|---|---|\n");
            for p in &self.pairs {
                let n = p.diff.count;
                let mean = if n > 0 {
                    format!("{:.2}", p.diff.mean)
                } else {
                    "—".into()
                };
                let sig = p.significant().map_or("—".to_string(), |s| {
                    (if s { "yes" } else { "no" }).to_string()
                });
                let pval = p.sign_p().map_or("—".to_string(), |v| format!("{v:.4}"));
                out.push_str(&format!(
                    "| {:.3} | {} − {} | {} | {} | {} | {} / {} / {} | {} | {} |\n",
                    p.duty,
                    p.protocol_a,
                    p.protocol_b,
                    n,
                    mean,
                    fmt_ci(p.diff.ci95()),
                    p.pos,
                    p.neg,
                    p.ties,
                    pval,
                    sig,
                ));
            }
        }
        out
    }

    /// The `statistics` block of `campaign.json`.
    pub fn to_value(&self) -> Value {
        let stat_value = |s: &OnlineStats| {
            let mut fields = vec![("count".to_string(), Value::UInt(s.count))];
            if s.count > 0 {
                fields.push(("mean".into(), Value::Float(s.mean)));
                fields.push(("min".into(), Value::Float(s.min)));
                fields.push(("max".into(), Value::Float(s.max)));
            }
            if let Some(sd) = s.std_dev() {
                fields.push(("std_dev".into(), Value::Float(sd)));
            }
            if let Some((lo, hi)) = s.ci95() {
                fields.push((
                    "ci95".into(),
                    Value::Array(vec![Value::Float(lo), Value::Float(hi)]),
                ));
            }
            Value::Object(fields)
        };
        let groups = self
            .groups
            .iter()
            .filter(|g| g.cells > 0)
            .map(|g| {
                let mut fields = vec![
                    ("protocol".to_string(), Value::Str(g.protocol.clone())),
                    ("duty".into(), Value::Float(g.duty)),
                    ("cells".into(), Value::UInt(g.cells)),
                    ("fdl".into(), stat_value(&g.fdl)),
                    ("fdl_p50".into(), Value::UInt(g.fdl_hist.p50().unwrap_or(0))),
                    ("fdl_p95".into(), Value::UInt(g.fdl_hist.p95().unwrap_or(0))),
                    ("coverage".into(), stat_value(&g.coverage)),
                    ("transmissions".into(), stat_value(&g.transmissions)),
                    ("energy_active".into(), stat_value(&g.energy)),
                ];
                let (blo, bhi) = g.bounds().expect("cells > 0");
                let mut theory = vec![
                    (
                        "predicted".to_string(),
                        Value::Float(g.predicted().expect("cells > 0")),
                    ),
                    ("lower".into(), Value::Float(blo)),
                    ("upper".into(), Value::Float(bhi)),
                    (
                        "worst_case_violations".into(),
                        Value::UInt(g.worst_case_violations),
                    ),
                ];
                if let Some(c) = g.conformance() {
                    theory.push(("theorem1_in_ci".into(), Value::Bool(c.theorem1_in_ci)));
                    theory.push((
                        "theorem2_ci_overlap".into(),
                        Value::Bool(c.theorem2_ci_overlap),
                    ));
                }
                fields.push(("theory".into(), Value::Object(theory)));
                Value::Object(fields)
            })
            .collect();
        let paired = self
            .pairs
            .iter()
            .map(|p| {
                let mut fields = vec![
                    ("protocol_a".to_string(), Value::Str(p.protocol_a.clone())),
                    ("protocol_b".into(), Value::Str(p.protocol_b.clone())),
                    ("duty".into(), Value::Float(p.duty)),
                    ("diff".into(), stat_value(&p.diff)),
                    ("pos".into(), Value::UInt(p.pos)),
                    ("neg".into(), Value::UInt(p.neg)),
                    ("ties".into(), Value::UInt(p.ties)),
                ];
                if let Some(pv) = p.sign_p() {
                    fields.push(("sign_p".into(), Value::Float(pv)));
                    fields.push((
                        "significant".into(),
                        Value::Bool(p.significant().expect("sign_p is Some")),
                    ));
                }
                Value::Object(fields)
            })
            .collect();
        Value::Object(vec![
            (
                "estimator".into(),
                Value::Str(
                    "mean ± t·SEM (95% CI, Student-t); quantiles from a log-bucketed \
                     streaming histogram (≤ 12.5% relative error); paired sign test \
                     exact two-sided at p = 0.5"
                        .into(),
                ),
            ),
            ("groups".into(), Value::Array(groups)),
            ("paired".into(), Value::Array(paired)),
        ])
    }

    /// Theorem conformance violations suitable for a CI gate: per-cell
    /// hard worst-case excesses, and group CIs lying wholly **above**
    /// Theorem 2's upper bound. The theorems bound the flooding delay
    /// *limit* from above — `FWL` is a worst-network waiting profile —
    /// so a dense deployment legitimately floods faster than the band's
    /// lower edge; only exceeding the upper side contradicts the paper.
    /// (Theorem 1's point prediction staying inside the CI, and full
    /// band overlap, are reported but not gated: at thousand-seed
    /// sample sizes the CI is tight enough that any model
    /// simplification fails them — callers decide whether to enforce
    /// more.)
    pub fn gate_violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        for g in self.groups.iter().filter(|g| g.cells > 0) {
            if g.worst_case_violations > 0 {
                out.push(format!(
                    "{} duty {:.3}: {} cell(s) exceed the Theorem 2 hard worst case",
                    g.protocol, g.duty, g.worst_case_violations
                ));
            }
            if let (Some((ci_lo, _)), Some((_, upper))) = (g.fdl.ci95(), g.bounds()) {
                if ci_lo > upper {
                    out.push(format!(
                        "{} duty {:.3}: 95% CI lies above the Theorem 2 upper bound",
                        g.protocol, g.duty
                    ));
                }
            }
        }
        out
    }
}

/// Build a [`CampaignStats`] from an in-memory cell list, discovering
/// the matrix axes in first-appearance order and pairing cells of the
/// same (duty, seed) across protocols. Convenience for tests and small
/// batches — the campaign runner folds shard partials instead (same
/// arithmetic, fixed order, O(1) memory).
pub fn stats_of_cells(cells: &[CellSummary]) -> CampaignStats {
    let mut protocols: Vec<String> = Vec::new();
    let mut duties: Vec<f64> = Vec::new();
    let mut seeds: Vec<u64> = Vec::new();
    for c in cells {
        if !protocols.contains(&c.protocol) {
            protocols.push(c.protocol.clone());
        }
        if !duties.iter().any(|d| d.to_bits() == c.duty.to_bits()) {
            duties.push(c.duty);
        }
        if !seeds.contains(&c.seed) {
            seeds.push(c.seed);
        }
    }
    let mut stats = CampaignStats::new(&protocols, &duties, seeds.len() as u64);
    for (d_idx, duty) in duties.iter().enumerate() {
        for seed in &seeds {
            let row: Vec<Option<CellSummary>> = protocols
                .iter()
                .map(|p| {
                    cells
                        .iter()
                        .find(|c| {
                            c.protocol == *p
                                && c.duty.to_bits() == duty.to_bits()
                                && c.seed == *seed
                        })
                        .cloned()
                })
                .collect();
            stats.record_row(d_idx, &row);
        }
    }
    stats
}

/// Render the aggregated campaign as a markdown table joining simulated
/// against predicted `E[FDL]` (via [`stats_of_cells`]).
pub fn campaign_table(cells: &[CellSummary]) -> String {
    stats_of_cells(cells).campaign_table()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(protocol: &str, duty: f64, seed: u64, fdl: Option<f64>) -> CellSummary {
        CellSummary {
            protocol: protocol.into(),
            duty,
            seed,
            n_sensors: 29,
            packets: 8,
            mean_fdl: fdl,
            coverage_rate: if fdl.is_some() { 1.0 } else { 0.0 },
            transmissions: 100,
            energy_active: 2500,
            slots_elapsed: 5000,
        }
    }

    #[test]
    fn predicted_uses_duty_equivalent_period() {
        // duty 0.05 → T_eff 20; Theorem 1 with M=8 ≥ m=⌈log2(30)⌉=5:
        // E[FDL] = T(m + M/2 - 1) = 20 × 8 = 160.
        assert_eq!(predicted_fdl(8, 29, 0.05), 160.0);
        let (lo, hi) = predicted_fdl_bounds(8, 29, 0.05);
        assert!(lo <= 160.0 && 160.0 <= hi);
        assert_eq!(duty_period(0.05), 20);
    }

    #[test]
    fn groups_aggregate_over_seeds_in_matrix_order() {
        let cells = [
            cell("of", 0.05, 1, Some(100.0)),
            cell("of", 0.05, 2, Some(140.0)),
            cell("dbao", 0.05, 1, Some(300.0)),
            cell("of", 0.10, 1, Some(60.0)),
        ];
        let stats = stats_of_cells(&cells);
        assert_eq!(stats.protocols, ["of", "dbao"]);
        let of_05 = &stats.groups[stats.group_index(0, 0)];
        assert_eq!(of_05.cells, 2);
        assert_eq!(of_05.fdl.mean, 120.0);
        assert!((of_05.ratio().unwrap() - 120.0 / 160.0).abs() < 1e-12);
        let dbao_05 = &stats.groups[stats.group_index(1, 0)];
        assert_eq!(dbao_05.cells, 1);
        let table = stats.campaign_table();
        assert!(table.contains("| of | 0.050 | 2 |"), "table:\n{table}");
        assert!(table.contains("| dbao | 0.050 | 1 |"));
    }

    #[test]
    fn uncovered_cells_leave_fdl_blank_but_count() {
        let cells = [cell("of", 0.05, 1, None), cell("of", 0.05, 2, Some(80.0))];
        let stats = stats_of_cells(&cells);
        let g = &stats.groups[0];
        assert_eq!(g.cells, 2);
        assert_eq!(g.fdl.count, 1, "mean over covered cells only");
        assert_eq!(g.fdl.mean, 80.0);
        assert_eq!(g.coverage.mean, 0.5);
        let table = campaign_table(&cells);
        assert!(table.contains("| of | 0.050 | 2 |"), "table:\n{table}");
    }

    #[test]
    fn paired_stats_difference_common_seeds_only() {
        // opt beats of on seeds 1 and 2; seed 3 is uncovered for of.
        let cells = [
            cell("opt", 0.05, 1, Some(90.0)),
            cell("opt", 0.05, 2, Some(100.0)),
            cell("opt", 0.05, 3, Some(95.0)),
            cell("of", 0.05, 1, Some(120.0)),
            cell("of", 0.05, 2, Some(100.0)),
            cell("of", 0.05, 3, None),
        ];
        let stats = stats_of_cells(&cells);
        assert_eq!(stats.pairs.len(), 1);
        let p = &stats.pairs[0];
        assert_eq!(
            (p.protocol_a.as_str(), p.protocol_b.as_str()),
            ("opt", "of")
        );
        assert_eq!(p.diff.count, 2, "seed 3 has no pair");
        assert_eq!(p.diff.mean, -15.0);
        assert_eq!((p.pos, p.neg, p.ties), (0, 1, 1));
        assert_eq!(p.sign_p(), Some(1.0), "one flip decides nothing");
    }

    #[test]
    fn merged_partials_match_a_single_fold() {
        let protocols = ["opt".to_string(), "of".to_string()];
        let duties = [0.05];
        let rows: Vec<[Option<CellSummary>; 2]> = (1..=40)
            .map(|s| {
                [
                    Some(cell("opt", 0.05, s, Some(80.0 + s as f64))),
                    Some(cell("of", 0.05, s, Some(90.0 + (s % 7) as f64))),
                ]
            })
            .collect();
        let mut whole = CampaignStats::new(&protocols, &duties, 40);
        for row in &rows {
            whole.record_row(0, &row[..]);
        }
        let mut merged = CampaignStats::new(&protocols, &duties, 40);
        for chunk in rows.chunks(9) {
            let mut part = CampaignStats::new(&protocols, &duties, 40);
            for row in chunk {
                part.record_row(0, &row[..]);
            }
            merged.merge(&part);
        }
        assert_eq!(merged.groups[0].cells, whole.groups[0].cells);
        assert_eq!(merged.groups[0].fdl_hist, whole.groups[0].fdl_hist);
        assert!((merged.groups[0].fdl.mean - whole.groups[0].fdl.mean).abs() < 1e-9);
        assert_eq!(merged.pairs[0].pos, whole.pairs[0].pos);
        assert!((merged.pairs[0].diff.m2 - whole.pairs[0].diff.m2).abs() < 1e-6);
    }

    #[test]
    fn conformance_flags_worst_case_and_band_misses() {
        // In-band group: delays right at the prediction.
        let good = stats_of_cells(&[
            cell("opt", 0.05, 1, Some(158.0)),
            cell("opt", 0.05, 2, Some(162.0)),
        ]);
        let c = good.groups[0].conformance().unwrap();
        assert!(c.theorem1_in_ci);
        assert!(c.theorem2_ci_overlap);
        assert_eq!(c.worst_case_violations, 0);
        assert!(good.gate_violations().is_empty());

        // A delay beyond T·FWL = hard worst case (T_eff=20, M=8, N=29:
        // FWL = 2m+M−2 = 16 → 320 slots).
        let bad = stats_of_cells(&[
            cell("opt", 0.05, 1, Some(500.0)),
            cell("opt", 0.05, 2, Some(510.0)),
        ]);
        assert_eq!(bad.groups[0].worst_case_violations, 2);
        let v = bad.gate_violations();
        assert!(
            v.iter().any(|s| s.contains("hard worst case")),
            "violations: {v:?}"
        );
        assert!(v
            .iter()
            .any(|s| s.contains("above the Theorem 2 upper bound")));

        // Beating the band from below (a dense network flooding faster
        // than the worst-network profile) is NOT a gate violation, even
        // though the overlap verdict reports the miss.
        let fast = stats_of_cells(&[
            cell("opt", 0.05, 1, Some(50.0)),
            cell("opt", 0.05, 2, Some(52.0)),
        ]);
        assert!(!fast.groups[0].conformance().unwrap().theorem2_ci_overlap);
        assert!(fast.gate_violations().is_empty());
    }

    #[test]
    fn statistics_block_has_groups_theory_and_pairs() {
        let cells = [
            cell("opt", 0.05, 1, Some(100.0)),
            cell("opt", 0.05, 2, Some(110.0)),
            cell("of", 0.05, 1, Some(130.0)),
            cell("of", 0.05, 2, Some(125.0)),
        ];
        let stats = stats_of_cells(&cells);
        let v = stats.to_value();
        let groups = match v.get("groups") {
            Some(Value::Array(a)) => a,
            other => panic!("groups: {other:?}"),
        };
        assert_eq!(groups.len(), 2);
        let g0 = &groups[0];
        assert_eq!(g0.get("protocol").unwrap().as_str(), Some("opt"));
        assert_eq!(g0.get("cells").unwrap().as_u64(), Some(2));
        let fdl = g0.get("fdl").unwrap();
        assert_eq!(fdl.get("count").unwrap().as_u64(), Some(2));
        assert!(fdl.get("ci95").is_some());
        let theory = g0.get("theory").unwrap();
        assert_eq!(theory.get("predicted").unwrap().as_f64(), Some(160.0));
        assert!(theory.get("theorem1_in_ci").is_some());
        let paired = match v.get("paired") {
            Some(Value::Array(a)) => a,
            other => panic!("paired: {other:?}"),
        };
        assert_eq!(paired.len(), 1);
        assert_eq!(paired[0].get("pos").unwrap().as_u64(), Some(0));
        assert_eq!(paired[0].get("neg").unwrap().as_u64(), Some(2));
        // The markdown renders without panicking and names the tables.
        let md = stats.stats_markdown();
        assert!(md.contains("## Per-group statistics"));
        assert!(md.contains("## Paired protocol comparisons"));
    }

    #[test]
    fn pair_index_covers_every_unordered_pair_once() {
        let protocols: Vec<String> = ["a", "b", "c", "d"].iter().map(|s| s.to_string()).collect();
        let duties = [0.1, 0.2];
        let stats = CampaignStats::new(&protocols, &duties, 1);
        assert_eq!(stats.pairs.len(), 6 * 2);
        let mut seen = std::collections::BTreeSet::new();
        for a in 0..4 {
            for b in a + 1..4 {
                for (d, duty) in duties.iter().enumerate() {
                    let idx = stats.pair_index(a, b, d);
                    assert!(seen.insert(idx), "index {idx} reused");
                    assert_eq!(stats.pairs[idx].protocol_a, protocols[a]);
                    assert_eq!(stats.pairs[idx].protocol_b, protocols[b]);
                    assert_eq!(stats.pairs[idx].duty.to_bits(), duty.to_bits());
                }
            }
        }
        assert_eq!(seen.len(), stats.pairs.len());
    }

    #[test]
    fn cell_summary_roundtrips_through_serde() {
        let c = cell("opt", 0.05, 3, Some(42.5));
        let json = serde_json::to_string_pretty(&c).unwrap();
        let back: CellSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
        let none = cell("opt", 0.05, 3, None);
        let back: CellSummary =
            serde_json::from_str(&serde_json::to_string_pretty(&none).unwrap()).unwrap();
        assert_eq!(back, none);
    }
}
