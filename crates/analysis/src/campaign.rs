//! Campaign aggregation: joining simulated cells against the paper's
//! delay-limit theory.
//!
//! The campaign runner (`ldcf-bench`) executes one simulation per
//! matrix cell (protocol × duty × seed) and summarises each into a
//! [`CellSummary`]. This module owns the *analysis* half: the theory
//! prediction for a cell's operating point (Theorem 1's `E[FDL]` at the
//! duty-equivalent period) and the aggregated campaign table that
//! reports simulated against predicted delay per (protocol, duty)
//! group, averaged over seeds.
//!
//! The join deliberately uses the *duty-equivalent* period
//! `T_eff = round(1/duty)`: the theory's schedule model is one active
//! slot per period, so a node at duty `d` wakes as often as a
//! single-slot node with period `1/d`, whatever its actual `(T, active)`
//! decomposition. This keeps heterogeneous-period cells comparable to
//! homogeneous ones on the same row.

use ldcf_core::fdl;
use serde::{Deserialize, Serialize};

/// One executed campaign cell, as the runner summarises it.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CellSummary {
    /// Protocol name (runner vocabulary, e.g. `"opt"`, `"dbao"`, `"of"`).
    pub protocol: String,
    /// Duty ratio of the cell.
    pub duty: f64,
    /// Schedule/MAC seed of the cell.
    pub seed: u64,
    /// Sensor count of the scenario topology (excludes the source).
    pub n_sensors: u64,
    /// Packets flooded.
    pub packets: u32,
    /// Mean flooding delay over covered packets, in slots.
    pub mean_fdl: Option<f64>,
    /// Fraction of packets that reached the coverage target.
    pub coverage_rate: f64,
    /// Committed transmissions.
    pub transmissions: u64,
    /// Slots the cell ran for.
    pub slots_elapsed: u64,
}

/// Theorem 1's `E[FDL]` at a cell's operating point, in slots, using
/// the duty-equivalent period `T_eff = round(1/duty)` (min 1).
pub fn predicted_fdl(packets: u32, n_sensors: u64, duty: f64) -> f64 {
    let period = (1.0 / duty).round().max(1.0) as u32;
    fdl::fdl_expected(packets, n_sensors, period)
}

/// Theorem 2's `(lower, upper)` bounds at the same operating point.
pub fn predicted_fdl_bounds(packets: u32, n_sensors: u64, duty: f64) -> (f64, f64) {
    let period = (1.0 / duty).round().max(1.0) as u32;
    fdl::fdl_theorem2_bounds(packets, n_sensors, period)
}

/// One aggregated row: a (protocol, duty) group averaged over seeds.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignRow {
    /// Protocol name.
    pub protocol: String,
    /// Duty ratio.
    pub duty: f64,
    /// Cells aggregated into this row.
    pub cells: usize,
    /// Mean of the cells' mean flooding delays (covered cells only).
    pub sim_fdl: Option<f64>,
    /// Theorem 1 prediction for the group's operating point.
    pub predicted: f64,
    /// Mean coverage success rate.
    pub coverage_rate: f64,
    /// Mean committed transmissions.
    pub transmissions: f64,
}

impl CampaignRow {
    /// Simulated over predicted delay; `None` when no cell covered.
    pub fn ratio(&self) -> Option<f64> {
        self.sim_fdl.map(|s| s / self.predicted)
    }
}

/// Aggregate cells into (protocol, duty) rows, in first-appearance
/// order (cells arrive in matrix order, so rows come out in matrix
/// order too). Averages are computed serially in input order, keeping
/// the table bytes independent of how the cells were executed.
pub fn aggregate(cells: &[CellSummary]) -> Vec<CampaignRow> {
    let mut rows: Vec<CampaignRow> = Vec::new();
    let mut acc: Vec<(Vec<f64>, Vec<f64>, Vec<f64>)> = Vec::new();
    for c in cells {
        let idx = match rows
            .iter()
            .position(|r| r.protocol == c.protocol && r.duty.to_bits() == c.duty.to_bits())
        {
            Some(i) => i,
            None => {
                rows.push(CampaignRow {
                    protocol: c.protocol.clone(),
                    duty: c.duty,
                    cells: 0,
                    sim_fdl: None,
                    predicted: predicted_fdl(c.packets, c.n_sensors, c.duty),
                    coverage_rate: 0.0,
                    transmissions: 0.0,
                });
                acc.push((Vec::new(), Vec::new(), Vec::new()));
                rows.len() - 1
            }
        };
        rows[idx].cells += 1;
        let (fdls, covs, txs) = &mut acc[idx];
        if let Some(f) = c.mean_fdl {
            fdls.push(f);
        }
        covs.push(c.coverage_rate);
        txs.push(c.transmissions as f64);
    }
    for (row, (fdls, covs, txs)) in rows.iter_mut().zip(acc) {
        row.sim_fdl = (!fdls.is_empty()).then(|| fdls.iter().sum::<f64>() / fdls.len() as f64);
        row.coverage_rate = covs.iter().sum::<f64>() / covs.len() as f64;
        row.transmissions = txs.iter().sum::<f64>() / txs.len() as f64;
    }
    rows
}

/// Render the aggregated campaign as a markdown table joining simulated
/// against predicted `E[FDL]`.
pub fn campaign_table(cells: &[CellSummary]) -> String {
    let rows = aggregate(cells);
    let mut out = String::new();
    out.push_str(
        "| protocol | duty | cells | sim E[FDL] | predicted E[FDL] | sim/pred | coverage | mean tx |\n",
    );
    out.push_str("|---|---|---|---|---|---|---|---|\n");
    for r in rows {
        let sim = r.sim_fdl.map_or("—".to_string(), |f| format!("{f:.1}"));
        let ratio = r.ratio().map_or("—".to_string(), |x| format!("{x:.2}"));
        out.push_str(&format!(
            "| {} | {:.3} | {} | {} | {:.1} | {} | {:.2} | {:.1} |\n",
            r.protocol, r.duty, r.cells, sim, r.predicted, ratio, r.coverage_rate, r.transmissions
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(protocol: &str, duty: f64, seed: u64, fdl: Option<f64>) -> CellSummary {
        CellSummary {
            protocol: protocol.into(),
            duty,
            seed,
            n_sensors: 29,
            packets: 8,
            mean_fdl: fdl,
            coverage_rate: if fdl.is_some() { 1.0 } else { 0.0 },
            transmissions: 100,
            slots_elapsed: 5000,
        }
    }

    #[test]
    fn predicted_uses_duty_equivalent_period() {
        // duty 0.05 → T_eff 20; Theorem 1 with M=8 ≥ m=⌈log2(30)⌉=5:
        // E[FDL] = T(m + M/2 - 1) = 20 × 8 = 160.
        assert_eq!(predicted_fdl(8, 29, 0.05), 160.0);
        let (lo, hi) = predicted_fdl_bounds(8, 29, 0.05);
        assert!(lo <= 160.0 && 160.0 <= hi);
    }

    #[test]
    fn aggregates_over_seeds_in_matrix_order() {
        let cells = [
            cell("of", 0.05, 1, Some(100.0)),
            cell("of", 0.05, 2, Some(140.0)),
            cell("dbao", 0.05, 1, Some(300.0)),
            cell("of", 0.10, 1, Some(60.0)),
        ];
        let rows = aggregate(&cells);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].protocol, "of");
        assert_eq!(rows[0].cells, 2);
        assert_eq!(rows[0].sim_fdl, Some(120.0));
        assert_eq!(rows[1].protocol, "dbao", "first-appearance order");
        assert_eq!(rows[2].duty, 0.10);
        assert!((rows[0].ratio().unwrap() - 120.0 / 160.0).abs() < 1e-12);
    }

    #[test]
    fn uncovered_cells_leave_fdl_blank_but_count() {
        let cells = [cell("of", 0.05, 1, None), cell("of", 0.05, 2, Some(80.0))];
        let rows = aggregate(&cells);
        assert_eq!(rows[0].cells, 2);
        assert_eq!(rows[0].sim_fdl, Some(80.0), "mean over covered cells only");
        assert_eq!(rows[0].coverage_rate, 0.5);
        let table = campaign_table(&cells);
        assert!(table.contains("| of | 0.050 | 2 |"), "table:\n{table}");
    }

    #[test]
    fn cell_summary_roundtrips_through_serde() {
        let c = cell("opt", 0.05, 3, Some(42.5));
        let json = serde_json::to_string_pretty(&c).unwrap();
        let back: CellSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
        let none = cell("opt", 0.05, 3, None);
        let back: CellSummary =
            serde_json::from_str(&serde_json::to_string_pretty(&none).unwrap()).unwrap();
        assert_eq!(back, none);
    }
}
