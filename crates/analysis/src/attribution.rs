//! Per-node flooding-delay attribution (paper §III–IV).
//!
//! A node's flooding delay — the slots between the packet's push at the
//! source and the node's first copy — is decomposed along its informing
//! chain into five exhaustive, mutually exclusive causes:
//!
//! * [`Cause::SleepWait`] — duty-cycle waiting: the receiver's working
//!   schedule had it dormant (Lemma 2 / Theorem 1's `T(m/2 + M - 1)`
//!   term). The rendezvous slot of the successful hop itself also
//!   counts here: even at full duty (`T = 1`) every hop costs one slot,
//!   exactly as the theory's per-hop floor.
//! * [`Cause::LinkLoss`] — a transmission aimed at the receiver was
//!   dropped by the link (the `x^{kT+1} = x^{kT} + 1` growth-rate
//!   magnifier of §IV-C); mistimed rendezvous from residual sync error
//!   lands here too — the copy was lost in flight either way.
//! * [`Cause::Collision`] — hidden-terminal interference garbled a
//!   transmission aimed at the receiver.
//! * [`Cause::BusyDefer`] — the semi-duplex MAC got in the way: the
//!   intended receiver was itself transmitting, or carrier sense
//!   silenced the sender for the slot.
//! * [`Cause::QueueBlock`] — the informing neighborhood held the packet
//!   and the receiver was awake, but the slot was spent serving other
//!   packets or receivers (Corollary 1's blocking, plus unicast
//!   fan-out serialisation).
//!
//! [`attribute_hop`] classifies every slot of one hop's informing
//! window `(parent_ready, delivered_at]` into exactly one cause, so hop
//! windows telescope along a dissemination-tree chain and the five
//! components sum *exactly* to the node's flooding delay — an identity
//! `ldcf_analysis::forensics` checks against the engine's own report.

use serde::Value;

/// One cause of one slot of flooding delay. See the module docs for
/// the paper mapping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cause {
    /// Receiver dormant per its working schedule (or the rendezvous
    /// slot of the successful hop).
    SleepWait,
    /// Transmission toward the receiver lost in flight (Bernoulli link
    /// loss or mistimed rendezvous).
    LinkLoss,
    /// Hidden-terminal collision at the receiver.
    Collision,
    /// Semi-duplex receiver-busy failure or carrier-sense deferral.
    BusyDefer,
    /// Informing neighborhood busy with other packets/receivers.
    QueueBlock,
}

impl Cause {
    /// Stable snake_case label used in JSON reports.
    pub fn label(self) -> &'static str {
        match self {
            Cause::SleepWait => "sleep_wait",
            Cause::LinkLoss => "link_loss",
            Cause::Collision => "collision",
            Cause::BusyDefer => "busy_defer",
            Cause::QueueBlock => "queue_block",
        }
    }
}

/// Merge two failure classifications of the same slot. A slot can carry
/// several failure events for one `(receiver, packet)` (e.g. two
/// colliding senders, or a mistimed attempt beside a deferral); the
/// most specific physical cause wins: collision > link loss > deferral.
pub fn merge_failures(existing: Cause, new: Cause) -> Cause {
    fn rank(c: Cause) -> u8 {
        match c {
            Cause::Collision => 3,
            Cause::LinkLoss => 2,
            Cause::BusyDefer => 1,
            Cause::SleepWait | Cause::QueueBlock => 0,
        }
    }
    if rank(new) > rank(existing) {
        new
    } else {
        existing
    }
}

/// Slots of flooding delay, split by cause. The five fields are
/// mutually exclusive and exhaustive: [`DelayAttribution::total`]
/// equals the attributed delay exactly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DelayAttribution {
    /// Slots waiting out the receiver's sleep schedule.
    pub sleep_wait: u64,
    /// Slots lost to link loss or mistimed rendezvous.
    pub link_loss: u64,
    /// Slots lost to hidden-terminal collisions.
    pub collision: u64,
    /// Slots lost to semi-duplex busy receivers / carrier-sense defers.
    pub busy_defer: u64,
    /// Slots the informing neighborhood spent on other work.
    pub queue_block: u64,
}

impl DelayAttribution {
    /// Charge one slot to `cause`.
    pub fn add(&mut self, cause: Cause) {
        match cause {
            Cause::SleepWait => self.sleep_wait += 1,
            Cause::LinkLoss => self.link_loss += 1,
            Cause::Collision => self.collision += 1,
            Cause::BusyDefer => self.busy_defer += 1,
            Cause::QueueBlock => self.queue_block += 1,
        }
    }

    /// Component-wise sum (for chain and fleet aggregates).
    pub fn merge(&mut self, other: &DelayAttribution) {
        self.sleep_wait += other.sleep_wait;
        self.link_loss += other.link_loss;
        self.collision += other.collision;
        self.busy_defer += other.busy_defer;
        self.queue_block += other.queue_block;
    }

    /// Total attributed slots — equals the attributed flooding delay.
    pub fn total(&self) -> u64 {
        self.sleep_wait + self.link_loss + self.collision + self.busy_defer + self.queue_block
    }

    /// `(label, slots)` pairs in report order.
    pub fn components(&self) -> [(&'static str, u64); 5] {
        [
            ("sleep_wait", self.sleep_wait),
            ("link_loss", self.link_loss),
            ("collision", self.collision),
            ("busy_defer", self.busy_defer),
            ("queue_block", self.queue_block),
        ]
    }

    /// Render as a JSON object.
    pub fn to_value(&self) -> Value {
        Value::Object(
            self.components()
                .iter()
                .map(|&(k, v)| (k.to_string(), Value::UInt(v)))
                .collect(),
        )
    }
}

/// Attribute every slot of one hop's informing window.
///
/// The window is `(parent_ready, delivered_at]`: `parent_ready` is the
/// slot the informing parent obtained the packet (the push slot when
/// the parent is the source), `delivered_at` the slot the child's first
/// copy landed. Each slot is classified by, in order:
///
/// 1. `failure_at(s)` — a recorded failure/deferral event aimed at this
///    `(receiver, packet)` pins the slot on its physical cause;
/// 2. the receiver being dormant (`receiver_active(s) == false`) —
///    [`Cause::SleepWait`];
/// 3. the rendezvous slot itself (`s == delivered_at`) —
///    [`Cause::SleepWait`] (the per-hop floor; see module docs);
/// 4. otherwise [`Cause::QueueBlock`].
///
/// Windows telescope: summing the attributions along a node's informing
/// chain yields exactly `delivered_at(node) - pushed_at`.
pub fn attribute_hop(
    parent_ready: u64,
    delivered_at: u64,
    mut receiver_active: impl FnMut(u64) -> bool,
    mut failure_at: impl FnMut(u64) -> Option<Cause>,
) -> DelayAttribution {
    let mut attr = DelayAttribution::default();
    for s in (parent_ready + 1)..=delivered_at {
        let cause = if let Some(f) = failure_at(s) {
            f
        } else if !receiver_active(s) || s == delivered_at {
            Cause::SleepWait
        } else {
            Cause::QueueBlock
        };
        attr.add(cause);
    }
    attr
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hop_window_is_exhaustive_and_exact() {
        // Window (10, 20]: 10 slots. Failures at 12 (loss) and 13
        // (collision); active only at even slots; delivery at 20.
        let attr = attribute_hop(
            10,
            20,
            |s| s % 2 == 0,
            |s| match s {
                12 => Some(Cause::LinkLoss),
                13 => Some(Cause::Collision),
                _ => None,
            },
        );
        assert_eq!(attr.total(), 10, "every slot classified exactly once");
        assert_eq!(attr.link_loss, 1);
        assert_eq!(attr.collision, 1);
        // Odd slots 11,15,17,19 dormant + the delivery slot 20.
        assert_eq!(attr.sleep_wait, 5);
        // Even, awake, failure-free, non-final: 14,16,18.
        assert_eq!(attr.queue_block, 3);
    }

    #[test]
    fn empty_window_attributes_nothing() {
        let attr = attribute_hop(7, 7, |_| true, |_| None);
        assert_eq!(attr, DelayAttribution::default());
        assert_eq!(attr.total(), 0);
    }

    #[test]
    fn delivery_slot_counts_as_sleep_wait_even_at_full_duty() {
        // Full duty, no failures: a 1-slot hop still costs 1 slot,
        // matching Theorem 1's nonzero delay at T = 1.
        let attr = attribute_hop(4, 5, |_| true, |_| None);
        assert_eq!(attr.sleep_wait, 1);
        assert_eq!(attr.total(), 1);
    }

    #[test]
    fn failure_priority_is_collision_loss_defer() {
        assert_eq!(
            merge_failures(Cause::LinkLoss, Cause::Collision),
            Cause::Collision
        );
        assert_eq!(
            merge_failures(Cause::Collision, Cause::BusyDefer),
            Cause::Collision
        );
        assert_eq!(
            merge_failures(Cause::BusyDefer, Cause::LinkLoss),
            Cause::LinkLoss
        );
        assert_eq!(
            merge_failures(Cause::BusyDefer, Cause::BusyDefer),
            Cause::BusyDefer
        );
    }

    #[test]
    fn chains_telescope() {
        // SOURCE(push@3) -> a(delivered@9) -> b(delivered@31): summing
        // the two hop windows must give b's full delay 31 - 3 = 28.
        let hop_a = attribute_hop(3, 9, |s| s % 3 == 0, |_| None);
        let hop_b = attribute_hop(9, 31, |s| s % 3 == 0, |_| None);
        let mut chain = hop_a;
        chain.merge(&hop_b);
        assert_eq!(chain.total(), 28);
        assert_eq!(hop_a.total(), 6, "a's own delay 9 - 3");
    }

    #[test]
    fn merge_and_components_cover_all_causes() {
        let mut a = DelayAttribution::default();
        for c in [
            Cause::SleepWait,
            Cause::LinkLoss,
            Cause::Collision,
            Cause::BusyDefer,
            Cause::QueueBlock,
        ] {
            a.add(c);
            assert_eq!(c.label(), {
                let mut b = DelayAttribution::default();
                b.add(c);
                b.components()
                    .iter()
                    .find(|&&(_, v)| v == 1)
                    .expect("one component set")
                    .0
            });
        }
        assert_eq!(a.total(), 5);
        let json = serde_json::to_string(&a.to_value()).unwrap();
        for (label, _) in a.components() {
            assert!(json.contains(label), "{json} lacks {label}");
        }
    }
}
