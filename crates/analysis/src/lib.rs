//! # ldcf-analysis — statistics, series and parallel sweeps
//!
//! Support crate for the experiment harness: summary statistics
//! ([`stats`]), labelled numeric series with markdown/CSV rendering
//! ([`series`]), ASCII line charts for terminal output ([`plot`]),
//! rayon-powered parameter sweeps with Monte-Carlo
//! averaging ([`sweep`]) — the figures of §V average over seeds and
//! sweep duty cycles, which is embarrassingly parallel — and replay of
//! slot-level event traces back into delay distributions ([`events`]).
//! Traces arrive through [`source`]: a format-sniffing [`EventSource`]
//! iterator that streams JSONL and binary (`ldcf-obs` binlog) traces
//! identically, so every report below is format-agnostic.
//!
//! Flood forensics lives in [`forensics`]: dissemination-tree
//! reconstruction and per-node delay attribution ([`attribution`])
//! from the same JSONL traces, with hard checks against the paper's
//! theory (exact attribution sums, spanning trees, Corollary 1
//! blocking bounds).

#![warn(missing_docs)]

pub mod attribution;
pub mod campaign;
pub mod events;
pub mod forensics;
pub mod plot;
pub mod series;
pub mod source;
pub mod stats;
pub mod sweep;

pub use attribution::{attribute_hop, Cause, DelayAttribution};
pub use campaign::{
    campaign_table, predicted_fdl, CampaignStats, CellSummary, GroupStats, PairedStats,
};
pub use events::{PacketReplay, ReplayBuilder, ReplayReport};
pub use forensics::{ForensicsError, ForensicsReport, PacketForensics, Via, Violation};
pub use plot::{ascii_chart, PlotOptions};
pub use series::{Series, Table};
pub use source::{EventSource, SourceError};
pub use stats::{mad, median, sign_test_two_sided, OnlineStats, Summary};
pub use sweep::{monte_carlo_mean, parallel_sweep};
