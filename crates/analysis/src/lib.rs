//! # ldcf-analysis — statistics, series and parallel sweeps
//!
//! Support crate for the experiment harness: summary statistics
//! ([`stats`]), labelled numeric series with markdown/CSV rendering
//! ([`series`]), ASCII line charts for terminal output ([`plot`]),
//! rayon-powered parameter sweeps with Monte-Carlo
//! averaging ([`sweep`]) — the figures of §V average over seeds and
//! sweep duty cycles, which is embarrassingly parallel — and replay of
//! slot-level JSONL event traces back into delay distributions
//! ([`events`]).

#![warn(missing_docs)]

pub mod events;
pub mod plot;
pub mod series;
pub mod stats;
pub mod sweep;

pub use events::{PacketReplay, ReplayReport};
pub use plot::{ascii_chart, PlotOptions};
pub use series::{Series, Table};
pub use stats::Summary;
pub use sweep::{monte_carlo_mean, parallel_sweep};
