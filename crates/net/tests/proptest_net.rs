//! Property-based tests for the network substrate.

use ldcf_net::{LinkQuality, NodeId, Topology, WorkingSchedule};
use proptest::prelude::*;

proptest! {
    /// `next_active_at_or_after` returns an active slot, is >= t, and is
    /// the SMALLEST such slot.
    #[test]
    fn next_active_is_correct(
        period in 1u32..50,
        offsets in prop::collection::vec(0u32..50, 1..8),
        t in 0u64..500,
    ) {
        let offsets: Vec<u32> = offsets.into_iter().map(|o| o % period).collect();
        let s = WorkingSchedule::new(period, offsets);
        let next = s.next_active_at_or_after(t);
        prop_assert!(next >= t);
        prop_assert!(s.is_active(next));
        for u in t..next {
            prop_assert!(!s.is_active(u), "slot {u} active before {next}");
        }
        // Periodicity: shifting by one period shifts the answer by one
        // period.
        prop_assert_eq!(
            s.next_active_at_or_after(t + period as u64),
            next + period as u64
        );
    }

    /// The duty ratio equals the measured fraction of active slots.
    #[test]
    fn duty_ratio_matches_census(
        period in 1u32..40,
        offsets in prop::collection::vec(0u32..40, 1..6),
    ) {
        let offsets: Vec<u32> = offsets.into_iter().map(|o| o % period).collect();
        let s = WorkingSchedule::new(period, offsets);
        let active = (0..period as u64).filter(|&t| s.is_active(t)).count();
        prop_assert!((s.duty_ratio() - active as f64 / period as f64).abs() < 1e-12);
    }

    /// Mean sleep latency is within [0, T-1] and zero iff always-on.
    #[test]
    fn mean_sleep_latency_bounds(
        period in 1u32..40,
        offset in 0u32..40,
    ) {
        let s = WorkingSchedule::new(period, vec![offset % period]);
        let msl = s.mean_sleep_latency();
        prop_assert!(msl >= 0.0);
        prop_assert!(msl <= (period as f64 - 1.0) + 1e-12);
        if period == 1 {
            prop_assert_eq!(msl, 0.0);
        }
    }

    /// ETX shortest paths never exceed (hops * max ETX) and never go
    /// below (hops * min ETX); parents always step towards the root.
    #[test]
    fn etx_tree_is_consistent(
        n in 2usize..30,
        seed in 0u64..500,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut topo = Topology::empty(n);
        // random connected tree + extra edges
        for i in 1..n {
            let parent = rng.random_range(0..i);
            let q = LinkQuality::new(rng.random_range(0.3..=1.0));
            topo.add_edge(NodeId::from(parent), NodeId::from(i), q, q);
        }
        for _ in 0..n {
            let a = rng.random_range(0..n);
            let b = rng.random_range(0..n);
            if a != b {
                let q = LinkQuality::new(rng.random_range(0.3..=1.0));
                topo.add_edge(NodeId::from(a), NodeId::from(b), q, q);
            }
        }
        let (cost, parent) = topo.etx_tree(NodeId(0));
        let hops = topo.hop_distances(NodeId(0));
        for i in 0..n {
            prop_assert!(cost[i].is_finite());
            // ETX of any path >= hops (each edge ETX >= 1) and <= hops/0.3.
            prop_assert!(cost[i] + 1e-9 >= hops[i] as f64);
            prop_assert!(cost[i] <= hops[i] as f64 / 0.3 + 1e-9);
            if i != 0 {
                let p = parent[i].expect("connected");
                // Parent is strictly closer in ETX.
                prop_assert!(cost[p.index()] < cost[i]);
            }
        }
    }

    /// k-class always suffices: 1-(1-p)^k >= confidence for the returned k.
    #[test]
    fn k_class_is_sufficient(
        p in 0.05f64..=1.0,
        conf in 0.0f64..0.999,
    ) {
        let q = LinkQuality::new(p);
        let k = q.k_class(conf);
        let reach = 1.0 - (1.0 - p).powi(k as i32);
        prop_assert!(reach >= conf - 1e-9, "k={k} reaches {reach} < {conf}");
        // Minimality: k-1 would not suffice (when k > 1).
        if k > 1 {
            let reach_less = 1.0 - (1.0 - p).powi(k as i32 - 1);
            prop_assert!(reach_less < conf + 1e-9);
        }
    }
}
