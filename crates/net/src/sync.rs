//! Local synchronization (paper §III-B).
//!
//! "With local synchronization, a sender knows when it shall wake up to
//! transmit a packet to each of its neighbors according to their working
//! schedules." The [`NeighborTable`] holds the full set of schedules and
//! answers the two questions a sender needs:
//!
//! * which neighbors are active (receivable) at slot `t`, and
//! * when is neighbor `v` next active at-or-after slot `t`.

use crate::bitset;
use crate::schedule::WorkingSchedule;
use crate::topology::Topology;
use crate::NodeId;

/// Precomputed wake calendar: for each slot offset of the shared period
/// `T`, the set of nodes active at that offset, as both a packed bitset
/// (for word-level intersection with adjacency rows) and a sorted id
/// list (for "who is awake now" iteration). Exists only when every
/// schedule shares one period — the simulator's normal configuration —
/// and is maintained incrementally when churn re-randomizes a schedule.
#[derive(Clone, Debug)]
struct WakeCalendar {
    period: u32,
    /// Words per offset row of `bits`.
    words_per_offset: usize,
    /// Words per offset row of `summary`
    /// (`words_for(words_per_offset)`).
    summary_words: usize,
    /// Offset-major bitset: node `i` active at offset `o` ⇔ bit `i` of
    /// row `o`.
    bits: Vec<u64>,
    /// Offset-major word-occupancy summary of `bits`: bit `w` of the
    /// offset-`o` summary row ⇔ word `w` of the offset-`o` active row
    /// is non-zero. The next-rendezvous scan rejects a whole offset
    /// with `summary_words` probes (64 active-row words per summary
    /// bit) before ever touching the row itself, which is what keeps
    /// the skip query O(period words) instead of O(period × N).
    summary: Vec<u64>,
    /// Sorted active-node list per offset.
    lists: Vec<Vec<NodeId>>,
}

impl WakeCalendar {
    /// Build from homogeneous-period schedules; `None` if periods mix.
    fn build(schedules: &[WorkingSchedule]) -> Option<Self> {
        let period = schedules[0].period();
        if schedules.iter().any(|s| s.period() != period) {
            return None;
        }
        let words_per_offset = bitset::words_for(schedules.len());
        let summary_words = bitset::words_for(words_per_offset);
        let mut cal = Self {
            period,
            words_per_offset,
            summary_words,
            bits: vec![0; period as usize * words_per_offset],
            summary: vec![0; period as usize * summary_words],
            lists: vec![Vec::new(); period as usize],
        };
        for (i, s) in schedules.iter().enumerate() {
            // Ascending node order keeps every offset list sorted.
            cal.insert(NodeId::from(i), s.active_slots());
        }
        Some(cal)
    }

    #[inline]
    fn offset_of(&self, t: u64) -> usize {
        (t % self.period as u64) as usize
    }

    #[inline]
    fn words(&self, offset: usize) -> &[u64] {
        &self.bits[offset * self.words_per_offset..(offset + 1) * self.words_per_offset]
    }

    #[inline]
    fn summary_row(&self, offset: usize) -> &[u64] {
        &self.summary[offset * self.summary_words..(offset + 1) * self.summary_words]
    }

    #[inline]
    fn is_active(&self, node: NodeId, t: u64) -> bool {
        bitset::test_bit(self.words(self.offset_of(t)), node.index())
    }

    /// Add `node` at each given offset (keeps lists sorted).
    fn insert(&mut self, node: NodeId, offsets: &[u32]) {
        for &o in offsets {
            let o = o as usize;
            let row = &mut self.bits[o * self.words_per_offset..(o + 1) * self.words_per_offset];
            if bitset::set_bit(row, node.index()) {
                // The node's word is now non-zero; mark it occupied.
                let srow = &mut self.summary[o * self.summary_words..(o + 1) * self.summary_words];
                bitset::set_bit(srow, node.index() / 64);
                let list = &mut self.lists[o];
                let at = list.partition_point(|&v| v < node);
                list.insert(at, node);
            }
        }
    }

    /// Remove `node` from each given offset.
    fn remove(&mut self, node: NodeId, offsets: &[u32]) {
        for &o in offsets {
            let o = o as usize;
            let row = &mut self.bits[o * self.words_per_offset..(o + 1) * self.words_per_offset];
            bitset::clear_bit(row, node.index());
            if row[node.index() / 64] == 0 {
                let srow = &mut self.summary[o * self.summary_words..(o + 1) * self.summary_words];
                bitset::clear_bit(srow, node.index() / 64);
            }
            if let Ok(at) = self.lists[o].binary_search(&node) {
                self.lists[o].remove(at);
            }
        }
    }

    /// Whether any node of `targets` is active at `offset`.
    /// `targets_summary` is the word-occupancy summary of `targets`;
    /// only words whose summaries collide are probed.
    #[inline]
    fn rendezvous_at(&self, offset: usize, targets: &[u64], targets_summary: &[u64]) -> bool {
        let row = self.words(offset);
        for w in bitset::iter_ones_and(self.summary_row(offset), targets_summary) {
            if row[w] & targets[w] != 0 {
                return true;
            }
        }
        false
    }
}

/// Iterator over the nodes active at one slot, from either a calendar
/// list or a schedule scan (see [`NeighborTable::all_active`]).
#[derive(Clone, Debug)]
pub enum ActiveNodes<'a> {
    /// Calendar-backed: a precomputed sorted slice.
    Calendar(std::slice::Iter<'a, NodeId>),
    /// Fallback: filter-scan over heterogeneous-period schedules.
    Scan {
        /// Remaining `(index, schedule)` pairs to filter.
        schedules: std::iter::Enumerate<std::slice::Iter<'a, WorkingSchedule>>,
        /// The queried slot.
        t: u64,
    },
}

impl Iterator for ActiveNodes<'_> {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        match self {
            ActiveNodes::Calendar(it) => it.next().copied(),
            ActiveNodes::Scan { schedules, t } => schedules
                .by_ref()
                .find(|(_, s)| s.is_active(*t))
                .map(|(i, _)| NodeId::from(i)),
        }
    }
}

/// Per-network table of working schedules with neighbor-aware queries.
///
/// This models the state each node accumulates via low-cost local
/// synchronization protocols; we keep it network-global for simulation
/// convenience (each node only ever queries its own neighborhood).
///
/// When all schedules share one period (the normal case), the table
/// carries a [`WakeCalendar`] making [`NeighborTable::is_active`] an
/// O(1) bit probe and [`NeighborTable::all_active`] a precomputed-slice
/// walk; [`NeighborTable::set_schedule`] keeps the calendar in sync when
/// churn re-randomizes a rebooted node's schedule.
#[derive(Clone, Debug)]
pub struct NeighborTable {
    schedules: Vec<WorkingSchedule>,
    calendar: Option<WakeCalendar>,
}

impl NeighborTable {
    /// Build from one schedule per node.
    pub fn new(schedules: Vec<WorkingSchedule>) -> Self {
        assert!(!schedules.is_empty());
        let calendar = WakeCalendar::build(&schedules);
        Self {
            schedules,
            calendar,
        }
    }

    /// Generate the paper's normalized configuration: every node picks a
    /// single uniformly random active slot in a period of `period` slots.
    pub fn random_single_slot<R: rand::Rng + ?Sized>(
        n_nodes: usize,
        period: u32,
        rng: &mut R,
    ) -> Self {
        Self::new(
            (0..n_nodes)
                .map(|_| WorkingSchedule::single_random(period, rng))
                .collect(),
        )
    }

    /// Number of nodes covered by the table.
    pub fn n_nodes(&self) -> usize {
        self.schedules.len()
    }

    /// The schedule of `node`.
    pub fn schedule(&self, node: NodeId) -> &WorkingSchedule {
        &self.schedules[node.index()]
    }

    /// Whether `node` is active at slot `t`.
    #[inline]
    pub fn is_active(&self, node: NodeId, t: u64) -> bool {
        match &self.calendar {
            Some(cal) => cal.is_active(node, t),
            None => self.schedules[node.index()].is_active(t),
        }
    }

    /// Replace the schedule of `node` (a rebooted mote re-enters the
    /// duty-cycle lottery with a fresh working schedule). The new
    /// schedule must keep the network-wide period. The wake calendar is
    /// updated incrementally: the node moves from its old offsets to the
    /// new ones.
    pub fn set_schedule(&mut self, node: NodeId, schedule: WorkingSchedule) {
        assert_eq!(
            schedule.period(),
            self.schedules[node.index()].period(),
            "replacement schedule must keep the period"
        );
        if let Some(cal) = &mut self.calendar {
            cal.remove(node, self.schedules[node.index()].active_slots());
            cal.insert(node, schedule.active_slots());
        }
        self.schedules[node.index()] = schedule;
    }

    /// Next slot `>= t` at which `node` is active (sleep-latency query).
    pub fn next_active(&self, node: NodeId, t: u64) -> u64 {
        self.schedules[node.index()].next_active_at_or_after(t)
    }

    /// Neighbors of `u` (per `topo`) that are active at slot `t`.
    pub fn active_neighbors<'a>(
        &'a self,
        topo: &'a Topology,
        u: NodeId,
        t: u64,
    ) -> impl Iterator<Item = NodeId> + 'a {
        topo.neighbors(u)
            .iter()
            .map(|&(v, _)| v)
            .filter(move |&v| self.is_active(v, t))
    }

    /// All nodes active at slot `t`, in ascending id order.
    #[inline]
    pub fn all_active(&self, t: u64) -> ActiveNodes<'_> {
        match &self.calendar {
            Some(cal) => ActiveNodes::Calendar(cal.lists[cal.offset_of(t)].iter()),
            None => ActiveNodes::Scan {
                schedules: self.schedules.iter().enumerate(),
                t,
            },
        }
    }

    /// Number of nodes active at slot `t` (O(1) with a calendar).
    #[inline]
    pub fn active_count(&self, t: u64) -> usize {
        match &self.calendar {
            Some(cal) => cal.lists[cal.offset_of(t)].len(),
            None => self.all_active(t).count(),
        }
    }

    /// Packed bitset over the nodes active at slot `t`
    /// ([`crate::bitset::words_for`]`(n_nodes)` words), when the table
    /// has a wake calendar. Hot paths intersect this with
    /// [`Topology::neighbor_words`] to enumerate awake neighbors.
    #[inline]
    pub fn active_words(&self, t: u64) -> Option<&[u64]> {
        self.calendar
            .as_ref()
            .map(|cal| cal.words(cal.offset_of(t)))
    }

    /// Whether the table carries a wake calendar (homogeneous periods).
    /// Without one there is no packed active row per slot and no
    /// [`NeighborTable::next_rendezvous`] query; callers wanting to
    /// skip dead slots must fall back to stepping.
    #[inline]
    pub fn has_calendar(&self) -> bool {
        self.calendar.is_some()
    }

    /// The calendar's common schedule period (`None` without a
    /// calendar). The wake pattern — and so every per-slot active
    /// count — repeats with exactly this period.
    #[inline]
    pub fn calendar_period(&self) -> Option<u32> {
        self.calendar.as_ref().map(|cal| cal.period)
    }

    /// Number of `u64` words in each summary row the calendar keeps per
    /// offset (`words_for(words_for(n_nodes))`), i.e. the length
    /// `targets_summary` must have in [`NeighborTable::next_rendezvous`].
    /// `None` without a calendar.
    #[inline]
    pub fn summary_words(&self) -> Option<usize> {
        self.calendar.as_ref().map(|cal| cal.summary_words)
    }

    /// Smallest slot `t >= from` at which any node of `targets` (a
    /// packed bitset over node ids, `words_for(n_nodes)` words) is
    /// active, or `None` when no offset of the whole period wakes one
    /// (or when the table has no calendar — gate on
    /// [`NeighborTable::has_calendar`] to tell the cases apart).
    ///
    /// `targets_summary` must be the word-occupancy summary of
    /// `targets` — bit `w` set ⇔ `targets[w] != 0`, as produced by
    /// [`bitset::summarize_into`] — sized per
    /// [`NeighborTable::summary_words`]. The scan visits at most
    /// `period` offsets, each rejected via its occupancy summary
    /// (1/64th of the row words) with full words probed only on
    /// summary collisions, so a miss costs O(period × n/4096) words
    /// rather than O(period × n/64).
    pub fn next_rendezvous(
        &self,
        from: u64,
        targets: &[u64],
        targets_summary: &[u64],
    ) -> Option<u64> {
        let cal = self.calendar.as_ref()?;
        (from..from + cal.period as u64)
            .find(|&t| cal.rendezvous_at(cal.offset_of(t), targets, targets_summary))
    }

    /// Mean duty ratio across nodes.
    pub fn mean_duty_ratio(&self) -> f64 {
        self.schedules.iter().map(|s| s.duty_ratio()).sum::<f64>() / self.schedules.len() as f64
    }

    /// Probability that two independently-random single-slot schedules
    /// share an active slot: `a/T` when both have `a` active slots. The
    /// paper's unicast assumption (§III-B) rests on this being small in
    /// low-duty-cycle networks.
    pub fn rendezvous_probability(period: u32, active_per_period: u32) -> f64 {
        // P(specific slot of u collides with one of v's a slots) = a/T for
        // a single-slot u; for multi-slot schedules this is the expected
        // per-slot overlap probability.
        active_per_period as f64 / period as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinkQuality;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table() -> NeighborTable {
        NeighborTable::new(vec![
            WorkingSchedule::new(5, vec![0]),
            WorkingSchedule::new(5, vec![2]),
            WorkingSchedule::new(5, vec![2]),
            WorkingSchedule::new(5, vec![4]),
        ])
    }

    #[test]
    fn active_queries() {
        let t = table();
        assert!(t.is_active(NodeId(0), 0));
        assert!(t.is_active(NodeId(1), 7));
        assert!(!t.is_active(NodeId(1), 6));
        assert_eq!(t.next_active(NodeId(3), 0), 4);
        assert_eq!(t.next_active(NodeId(3), 5), 9);
    }

    #[test]
    fn all_active_at_slot() {
        let t = table();
        let at2: Vec<NodeId> = t.all_active(2).collect();
        assert_eq!(at2, vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn active_neighbors_respects_topology() {
        let t = table();
        let topo = Topology::line(4, LinkQuality::PERFECT);
        // node 0's only neighbor is node 1, active at slot 2.
        let act: Vec<NodeId> = t.active_neighbors(&topo, NodeId(0), 2).collect();
        assert_eq!(act, vec![NodeId(1)]);
        // node 2's neighbors are 1 and 3; at slot 4 only 3 is active.
        let act: Vec<NodeId> = t.active_neighbors(&topo, NodeId(2), 4).collect();
        assert_eq!(act, vec![NodeId(3)]);
    }

    #[test]
    fn mean_duty_ratio_matches() {
        let t = table();
        assert!((t.mean_duty_ratio() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn rendezvous_probability_is_low_at_low_duty() {
        assert!((NeighborTable::rendezvous_probability(50, 1) - 0.02).abs() < 1e-12);
        assert!(NeighborTable::rendezvous_probability(20, 1) <= 0.05);
    }

    #[test]
    fn random_single_slot_has_unit_duty() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = NeighborTable::random_single_slot(50, 20, &mut rng);
        assert_eq!(t.n_nodes(), 50);
        assert!((t.mean_duty_ratio() - 0.05).abs() < 1e-12);
    }

    /// The calendar-backed queries must agree with a direct schedule
    /// scan at every slot, for homogeneous and mixed periods alike.
    fn assert_queries_match_scan(t: &NeighborTable, slots: u64) {
        for slot in 0..slots {
            let scan: Vec<NodeId> = (0..t.n_nodes())
                .filter(|&i| t.schedule(NodeId::from(i)).is_active(slot))
                .map(NodeId::from)
                .collect();
            let fast: Vec<NodeId> = t.all_active(slot).collect();
            assert_eq!(fast, scan, "all_active at slot {slot}");
            assert_eq!(t.active_count(slot), scan.len());
            for i in 0..t.n_nodes() {
                let node = NodeId::from(i);
                assert_eq!(
                    t.is_active(node, slot),
                    t.schedule(node).is_active(slot),
                    "is_active({i}, {slot})"
                );
            }
            if let Some(words) = t.active_words(slot) {
                let from_words: Vec<NodeId> =
                    crate::bitset::iter_ones(words).map(NodeId::from).collect();
                assert_eq!(from_words, scan, "active_words at slot {slot}");
            }
        }
    }

    #[test]
    fn calendar_matches_schedule_scan() {
        let mut rng = StdRng::seed_from_u64(9);
        let t = NeighborTable::new(
            (0..40)
                .map(|_| WorkingSchedule::multi_random(12, 3, &mut rng))
                .collect(),
        );
        assert!(
            t.active_words(0).is_some(),
            "homogeneous periods ⇒ calendar"
        );
        assert_queries_match_scan(&t, 30);
    }

    #[test]
    fn mixed_periods_fall_back_to_scan() {
        let t = NeighborTable::new(vec![
            WorkingSchedule::new(5, vec![0]),
            WorkingSchedule::new(3, vec![1]),
            WorkingSchedule::always_on(),
        ]);
        assert!(t.active_words(0).is_none(), "mixed periods ⇒ no calendar");
        assert_queries_match_scan(&t, 20);
    }

    /// Brute-force reference for `next_rendezvous`: scan slot by slot.
    fn brute_next_rendezvous(t: &NeighborTable, from: u64, targets: &[NodeId]) -> Option<u64> {
        let period = t.schedule(NodeId(0)).period() as u64;
        (from..from + period).find(|&slot| targets.iter().any(|&v| t.is_active(v, slot)))
    }

    /// Query `next_rendezvous` for an explicit target set, exercising
    /// the packed-row + summary path.
    fn query_rendezvous(t: &NeighborTable, from: u64, targets: &[NodeId]) -> Option<u64> {
        let mut words = vec![0u64; bitset::words_for(t.n_nodes())];
        for &v in targets {
            bitset::set_bit(&mut words, v.index());
        }
        let mut summary = vec![0u64; t.summary_words().expect("calendar exists")];
        bitset::summarize_into(&words, &mut summary);
        t.next_rendezvous(from, &words, &summary)
    }

    #[test]
    fn next_rendezvous_matches_brute_force() {
        let mut rng = StdRng::seed_from_u64(77);
        // 200 nodes ⇒ several row words, so the summary actually prunes.
        let t = NeighborTable::random_single_slot(200, 25, &mut rng);
        let mut pick = StdRng::seed_from_u64(5);
        for from in 0..60u64 {
            use rand::Rng;
            let k = pick.random_range(0..5usize);
            let targets: Vec<NodeId> = (0..k)
                .map(|_| NodeId(pick.random_range(0..200u32)))
                .collect();
            assert_eq!(
                query_rendezvous(&t, from, &targets),
                brute_next_rendezvous(&t, from, &targets),
                "from={from} targets={targets:?}"
            );
        }
        // An empty target set never has a rendezvous.
        assert_eq!(query_rendezvous(&t, 3, &[]), None);
    }

    #[test]
    fn next_rendezvous_tracks_schedule_churn() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut t = NeighborTable::random_single_slot(130, 16, &mut rng);
        let targets = [NodeId(65), NodeId(129)];
        assert_eq!(
            query_rendezvous(&t, 0, &targets),
            brute_next_rendezvous(&t, 0, &targets)
        );
        // Move both targets; the summary must follow the rows exactly,
        // including clearing bits when a word empties.
        t.set_schedule(NodeId(65), WorkingSchedule::new(16, vec![13]));
        t.set_schedule(NodeId(129), WorkingSchedule::new(16, vec![13]));
        for from in 0..40u64 {
            assert_eq!(
                query_rendezvous(&t, from, &targets),
                brute_next_rendezvous(&t, from, &targets),
                "after churn, from={from}"
            );
        }
        assert_eq!(query_rendezvous(&t, 0, &targets), Some(13));
    }

    #[test]
    fn next_rendezvous_is_none_without_calendar() {
        let t = NeighborTable::new(vec![
            WorkingSchedule::new(5, vec![0]),
            WorkingSchedule::new(3, vec![1]),
        ]);
        assert!(!t.has_calendar());
        assert_eq!(t.summary_words(), None);
        assert_eq!(t.next_rendezvous(0, &[u64::MAX], &[u64::MAX]), None);
    }

    #[test]
    fn set_schedule_updates_calendar_incrementally() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut t = NeighborTable::random_single_slot(20, 10, &mut rng);
        // Re-randomize a few nodes (the churn-recovery path) and check
        // every query against the ground truth after each change.
        for &(node, slot) in &[(3u32, 7u32), (0, 0), (19, 9), (3, 7), (3, 2)] {
            t.set_schedule(NodeId(node), WorkingSchedule::new(10, vec![slot]));
            assert!(t.is_active(NodeId(node), slot as u64));
            assert_queries_match_scan(&t, 20);
        }
        // Multi-slot replacement keeps the lists sorted too.
        t.set_schedule(NodeId(5), WorkingSchedule::new(10, vec![1, 4, 9]));
        assert_queries_match_scan(&t, 20);
    }
}
