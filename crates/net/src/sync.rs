//! Local synchronization (paper §III-B).
//!
//! "With local synchronization, a sender knows when it shall wake up to
//! transmit a packet to each of its neighbors according to their working
//! schedules." The [`NeighborTable`] holds the full set of schedules and
//! answers the two questions a sender needs:
//!
//! * which neighbors are active (receivable) at slot `t`, and
//! * when is neighbor `v` next active at-or-after slot `t`.

use crate::schedule::WorkingSchedule;
use crate::topology::Topology;
use crate::NodeId;

/// Per-network table of working schedules with neighbor-aware queries.
///
/// This models the state each node accumulates via low-cost local
/// synchronization protocols; we keep it network-global for simulation
/// convenience (each node only ever queries its own neighborhood).
#[derive(Clone, Debug)]
pub struct NeighborTable {
    schedules: Vec<WorkingSchedule>,
}

impl NeighborTable {
    /// Build from one schedule per node.
    pub fn new(schedules: Vec<WorkingSchedule>) -> Self {
        assert!(!schedules.is_empty());
        Self { schedules }
    }

    /// Generate the paper's normalized configuration: every node picks a
    /// single uniformly random active slot in a period of `period` slots.
    pub fn random_single_slot<R: rand::Rng + ?Sized>(
        n_nodes: usize,
        period: u32,
        rng: &mut R,
    ) -> Self {
        Self::new(
            (0..n_nodes)
                .map(|_| WorkingSchedule::single_random(period, rng))
                .collect(),
        )
    }

    /// Number of nodes covered by the table.
    pub fn n_nodes(&self) -> usize {
        self.schedules.len()
    }

    /// The schedule of `node`.
    pub fn schedule(&self, node: NodeId) -> &WorkingSchedule {
        &self.schedules[node.index()]
    }

    /// Whether `node` is active at slot `t`.
    #[inline]
    pub fn is_active(&self, node: NodeId, t: u64) -> bool {
        self.schedules[node.index()].is_active(t)
    }

    /// Replace the schedule of `node` (a rebooted mote re-enters the
    /// duty-cycle lottery with a fresh working schedule). The new
    /// schedule must keep the network-wide period.
    pub fn set_schedule(&mut self, node: NodeId, schedule: WorkingSchedule) {
        assert_eq!(
            schedule.period(),
            self.schedules[node.index()].period(),
            "replacement schedule must keep the period"
        );
        self.schedules[node.index()] = schedule;
    }

    /// Next slot `>= t` at which `node` is active (sleep-latency query).
    pub fn next_active(&self, node: NodeId, t: u64) -> u64 {
        self.schedules[node.index()].next_active_at_or_after(t)
    }

    /// Neighbors of `u` (per `topo`) that are active at slot `t`.
    pub fn active_neighbors<'a>(
        &'a self,
        topo: &'a Topology,
        u: NodeId,
        t: u64,
    ) -> impl Iterator<Item = NodeId> + 'a {
        topo.neighbors(u)
            .iter()
            .map(|&(v, _)| v)
            .filter(move |&v| self.is_active(v, t))
    }

    /// All nodes active at slot `t`.
    pub fn all_active(&self, t: u64) -> impl Iterator<Item = NodeId> + '_ {
        self.schedules
            .iter()
            .enumerate()
            .filter(move |(_, s)| s.is_active(t))
            .map(|(i, _)| NodeId::from(i))
    }

    /// Mean duty ratio across nodes.
    pub fn mean_duty_ratio(&self) -> f64 {
        self.schedules.iter().map(|s| s.duty_ratio()).sum::<f64>() / self.schedules.len() as f64
    }

    /// Probability that two independently-random single-slot schedules
    /// share an active slot: `a/T` when both have `a` active slots. The
    /// paper's unicast assumption (§III-B) rests on this being small in
    /// low-duty-cycle networks.
    pub fn rendezvous_probability(period: u32, active_per_period: u32) -> f64 {
        // P(specific slot of u collides with one of v's a slots) = a/T for
        // a single-slot u; for multi-slot schedules this is the expected
        // per-slot overlap probability.
        active_per_period as f64 / period as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinkQuality;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table() -> NeighborTable {
        NeighborTable::new(vec![
            WorkingSchedule::new(5, vec![0]),
            WorkingSchedule::new(5, vec![2]),
            WorkingSchedule::new(5, vec![2]),
            WorkingSchedule::new(5, vec![4]),
        ])
    }

    #[test]
    fn active_queries() {
        let t = table();
        assert!(t.is_active(NodeId(0), 0));
        assert!(t.is_active(NodeId(1), 7));
        assert!(!t.is_active(NodeId(1), 6));
        assert_eq!(t.next_active(NodeId(3), 0), 4);
        assert_eq!(t.next_active(NodeId(3), 5), 9);
    }

    #[test]
    fn all_active_at_slot() {
        let t = table();
        let at2: Vec<NodeId> = t.all_active(2).collect();
        assert_eq!(at2, vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn active_neighbors_respects_topology() {
        let t = table();
        let topo = Topology::line(4, LinkQuality::PERFECT);
        // node 0's only neighbor is node 1, active at slot 2.
        let act: Vec<NodeId> = t.active_neighbors(&topo, NodeId(0), 2).collect();
        assert_eq!(act, vec![NodeId(1)]);
        // node 2's neighbors are 1 and 3; at slot 4 only 3 is active.
        let act: Vec<NodeId> = t.active_neighbors(&topo, NodeId(2), 4).collect();
        assert_eq!(act, vec![NodeId(3)]);
    }

    #[test]
    fn mean_duty_ratio_matches() {
        let t = table();
        assert!((t.mean_duty_ratio() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn rendezvous_probability_is_low_at_low_duty() {
        assert!((NeighborTable::rendezvous_probability(50, 1) - 0.02).abs() < 1e-12);
        assert!(NeighborTable::rendezvous_probability(20, 1) <= 0.05);
    }

    #[test]
    fn random_single_slot_has_unit_duty() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = NeighborTable::random_single_slot(50, 20, &mut rng);
        assert_eq!(t.n_nodes(), 50);
        assert!((t.mean_duty_ratio() - 0.05).abs() < 1e-12);
    }
}
