//! Periodic working schedules (paper §III-A).
//!
//! A sensor alternates between an *active* and a *dormant* state. The
//! working schedule is periodic with period `T` slots; the sensor is
//! active in a fixed subset of slots of each period and dormant in the
//! rest. The paper's normalized analysis picks exactly **one** random
//! active slot per period, giving duty ratio `1/T`; the type supports any
//! number of active slots so higher duty ratios (Fig. 10's 2–20 % sweep)
//! are expressed either as `1/T` with varying `T` or as `a/T`.
//!
//! A dormant sensor can still *wake up to transmit* into a neighbor's
//! active slot (its timer fires on demand); it can only *receive* in its
//! own active slots. That asymmetry is enforced by the simulator, not
//! here — the schedule just answers "is node active at slot `t`?" and
//! "when is its next active slot?".

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A periodic active/dormant working schedule.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct WorkingSchedule {
    /// Period length `T` in slots.
    period: u32,
    /// Sorted, de-duplicated active slot offsets, each `< period`.
    active: Vec<u32>,
}

impl WorkingSchedule {
    /// Build a schedule from a period and a set of active slot offsets.
    ///
    /// Offsets are sorted and de-duplicated. Panics if `period == 0`, if
    /// no active slot is given, or if an offset is out of range — those
    /// are construction bugs, not runtime conditions.
    pub fn new(period: u32, mut active_slots: Vec<u32>) -> Self {
        assert!(period > 0, "schedule period must be positive");
        assert!(!active_slots.is_empty(), "schedule needs >= 1 active slot");
        active_slots.sort_unstable();
        active_slots.dedup();
        assert!(
            *active_slots.last().unwrap() < period,
            "active slot offset out of range"
        );
        Self {
            period,
            active: active_slots,
        }
    }

    /// The paper's normalized schedule: exactly one active slot, chosen
    /// uniformly at random in `0..period` (§III-A: "a sensor randomly
    /// picks up one active time slot in one period and repeats").
    pub fn single_random<R: Rng + ?Sized>(period: u32, rng: &mut R) -> Self {
        let slot = rng.random_range(0..period);
        Self::new(period, vec![slot])
    }

    /// A schedule with `count` distinct random active slots per period,
    /// for duty ratios above `1/T`.
    pub fn multi_random<R: Rng + ?Sized>(period: u32, count: u32, rng: &mut R) -> Self {
        assert!(count >= 1 && count <= period, "0 < count <= period");
        let mut offsets: Vec<u32> = (0..period).collect();
        offsets.shuffle(rng);
        offsets.truncate(count as usize);
        Self::new(period, offsets)
    }

    /// Always-on schedule (duty ratio 100 %), the degenerate `T = 1` case
    /// used by Fig. 5's "Duty Ratio = 100 %" curve.
    pub fn always_on() -> Self {
        Self::new(1, vec![0])
    }

    /// Period `T` in slots.
    #[inline]
    pub fn period(&self) -> u32 {
        self.period
    }

    /// Number of active slots per period.
    #[inline]
    pub fn active_per_period(&self) -> u32 {
        self.active.len() as u32
    }

    /// Sorted active slot offsets within the period.
    pub fn active_slots(&self) -> &[u32] {
        &self.active
    }

    /// Duty ratio `a/T` in `(0, 1]`.
    pub fn duty_ratio(&self) -> f64 {
        self.active.len() as f64 / self.period as f64
    }

    /// Whether the node is active (can receive) at absolute slot `t`.
    #[inline]
    pub fn is_active(&self, t: u64) -> bool {
        let phase = (t % self.period as u64) as u32;
        self.active.binary_search(&phase).is_ok()
    }

    /// The first absolute slot `>= t` at which the node is active.
    ///
    /// This is the *sleep latency* primitive: a sender holding a packet at
    /// slot `t` must wait until `next_active_at_or_after(t)` to deliver it
    /// to this node.
    pub fn next_active_at_or_after(&self, t: u64) -> u64 {
        let period = self.period as u64;
        let phase = (t % period) as u32;
        match self.active.iter().find(|&&s| s >= phase) {
            Some(&s) => t + (s - phase) as u64,
            // Wrap to the first active slot of the next period.
            None => t + (period - phase as u64) + self.active[0] as u64,
        }
    }

    /// The first absolute slot strictly after `t` at which the node is
    /// active. Used for retransmissions: after a loss at slot `t`, the
    /// sender "waits one more sleep latency" (Fig. 1).
    pub fn next_active_after(&self, t: u64) -> u64 {
        self.next_active_at_or_after(t + 1)
    }

    /// Expected waiting (in slots) from a uniformly random time until this
    /// node's next active slot. For a single-active-slot schedule this is
    /// `(T-1)/2`, matching the paper's `E[d_h] = (T-1)/2` under
    /// `P(d_h = k) = 1/T, k = 0..T-1` (Theorem 1 proof).
    pub fn mean_sleep_latency(&self) -> f64 {
        let t = self.period as f64;
        let a = self.active.len() as f64;
        // With `a` active slots evenly likely, the mean gap-to-next over a
        // uniform phase is (T/a - 1)/2 only for evenly spaced slots; for
        // exactness we average the per-phase wait.
        let total: u64 = (0..self.period)
            .map(|phase| self.next_active_at_or_after(phase as u64) - phase as u64)
            .sum();
        debug_assert!(a <= t);
        total as f64 / t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn single_slot_basics() {
        let s = WorkingSchedule::new(10, vec![3]);
        assert_eq!(s.period(), 10);
        assert_eq!(s.duty_ratio(), 0.1);
        assert!(s.is_active(3));
        assert!(s.is_active(13));
        assert!(!s.is_active(4));
    }

    #[test]
    fn next_active_wraps_period() {
        let s = WorkingSchedule::new(10, vec![3]);
        assert_eq!(s.next_active_at_or_after(0), 3);
        assert_eq!(s.next_active_at_or_after(3), 3);
        assert_eq!(s.next_active_at_or_after(4), 13);
        assert_eq!(s.next_active_after(3), 13);
        assert_eq!(s.next_active_at_or_after(23), 23);
    }

    #[test]
    fn multi_slot_next_active() {
        let s = WorkingSchedule::new(8, vec![1, 5]);
        assert_eq!(s.next_active_at_or_after(0), 1);
        assert_eq!(s.next_active_at_or_after(2), 5);
        assert_eq!(s.next_active_at_or_after(6), 9);
        assert_eq!(s.duty_ratio(), 0.25);
    }

    #[test]
    fn always_on_never_waits() {
        let s = WorkingSchedule::always_on();
        for t in 0..20 {
            assert!(s.is_active(t));
            assert_eq!(s.next_active_at_or_after(t), t);
        }
        assert_eq!(s.duty_ratio(), 1.0);
        assert_eq!(s.mean_sleep_latency(), 0.0);
    }

    #[test]
    fn mean_sleep_latency_single_slot() {
        // For one active slot in T, waits over phases 0..T are a
        // permutation of 0..T, so the mean is (T-1)/2.
        for t in [2u32, 5, 10, 50] {
            let s = WorkingSchedule::new(t, vec![t / 2]);
            let expect = (t as f64 - 1.0) / 2.0;
            assert!((s.mean_sleep_latency() - expect).abs() < 1e-9, "T={t}");
        }
    }

    #[test]
    fn random_schedules_are_valid() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let s = WorkingSchedule::single_random(20, &mut rng);
            assert_eq!(s.active_per_period(), 1);
            assert!(s.active_slots()[0] < 20);
        }
        let m = WorkingSchedule::multi_random(20, 4, &mut rng);
        assert_eq!(m.active_per_period(), 4);
        assert!((m.duty_ratio() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn dedups_and_sorts_offsets() {
        let s = WorkingSchedule::new(10, vec![7, 2, 7, 2]);
        assert_eq!(s.active_slots(), &[2, 7]);
    }

    #[test]
    #[should_panic(expected = "active slot offset out of range")]
    fn rejects_out_of_range_offset() {
        let _ = WorkingSchedule::new(5, vec![5]);
    }

    #[test]
    #[should_panic(expected = "needs >= 1 active slot")]
    fn rejects_empty_schedule() {
        let _ = WorkingSchedule::new(5, vec![]);
    }
}
