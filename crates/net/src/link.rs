//! Unreliable wireless links (paper §III-B, §IV-B).
//!
//! Each directed link carries a *packet reception ratio* (PRR) — the
//! probability that a single unicast transmission over the link succeeds.
//! §IV-B quantifies quality through the *k-class* abstraction: a k-class
//! link delivers a packet with high probability within `k` transmissions.
//! The paper's Fig. 7 legend maps link quality `p` to
//! `k = 1/p` (expected transmission count, i.e. ETX):
//! 80 % → 1.25, 70 % → 1.42..., 60 % → 1.67, 50 % → 2.

use serde::{Deserialize, Serialize};

/// Quality of a (directed) wireless link, stored as PRR in `(0, 1]`.
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug, Serialize, Deserialize)]
pub struct LinkQuality(f64);

impl LinkQuality {
    /// A perfect (loss-free) link, the paper's "ideal network" case.
    pub const PERFECT: LinkQuality = LinkQuality(1.0);

    /// Construct from a PRR. Panics on values outside `(0, 1]` — a zero
    /// quality link is simply absent from the topology.
    pub fn new(prr: f64) -> Self {
        assert!(
            prr > 0.0 && prr <= 1.0 && prr.is_finite(),
            "PRR must be in (0,1], got {prr}"
        );
        Self(prr)
    }

    /// Construct, clamping into `[min_prr, 1]`. Useful when deriving PRR
    /// from noisy RSSI where the sigmoid can underflow.
    pub fn clamped(prr: f64, min_prr: f64) -> Self {
        Self::new(prr.clamp(min_prr, 1.0))
    }

    /// The packet reception ratio in `(0, 1]`.
    #[inline]
    pub fn prr(self) -> f64 {
        self.0
    }

    /// Expected number of transmissions for one success (ETX = `1/PRR`).
    /// This is the paper's fractional `k` (Fig. 7 legend).
    #[inline]
    pub fn etx(self) -> f64 {
        1.0 / self.0
    }

    /// The integer k-class at a confidence level: the smallest `k` with
    /// `1 - (1-p)^k >= confidence` ("with high probability, a packet can
    /// be transmitted successfully via k transmission(s)", §IV-B).
    pub fn k_class(self, confidence: f64) -> u32 {
        assert!(
            (0.0..1.0).contains(&confidence),
            "confidence must be in [0,1)"
        );
        if self.0 >= 1.0 {
            return 1;
        }
        let q = 1.0 - self.0;
        // Smallest k with q^k <= 1 - confidence.
        let k = ((1.0 - confidence).ln() / q.ln()).ceil();
        (k as u32).max(1)
    }

    /// Whether the link is perfect (`k = 1` class, §IV-B).
    #[inline]
    pub fn is_perfect(self) -> bool {
        self.0 >= 1.0
    }
}

impl Default for LinkQuality {
    fn default() -> Self {
        Self::PERFECT
    }
}

/// A directed link between two nodes with a quality.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct Link {
    /// Transmitting endpoint.
    pub from: crate::NodeId,
    /// Receiving endpoint.
    pub to: crate::NodeId,
    /// Link quality (PRR).
    pub quality: LinkQuality,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn etx_is_reciprocal_prr() {
        assert!((LinkQuality::new(0.8).etx() - 1.25).abs() < 1e-12);
        assert!((LinkQuality::new(0.5).etx() - 2.0).abs() < 1e-12);
        assert_eq!(LinkQuality::PERFECT.etx(), 1.0);
    }

    #[test]
    fn paper_fig7_k_values() {
        // Fig. 7 legend: quality -> expected transmission time k = 1/p.
        for (p, k) in [(0.8, 1.25), (0.7, 1.0 / 0.7), (0.6, 1.0 / 0.6), (0.5, 2.0)] {
            assert!((LinkQuality::new(p).etx() - k).abs() < 1e-9);
        }
    }

    #[test]
    fn k_class_confidence() {
        let l = LinkQuality::new(0.5);
        // 1-(0.5)^k >= 0.9 -> k >= 3.32 -> 4
        assert_eq!(l.k_class(0.9), 4);
        assert_eq!(l.k_class(0.5), 1);
        assert_eq!(LinkQuality::PERFECT.k_class(0.999), 1);
    }

    #[test]
    fn k_class_monotone_in_confidence() {
        let l = LinkQuality::new(0.7);
        let mut prev = 0;
        for c in [0.1, 0.5, 0.9, 0.99, 0.999] {
            let k = l.k_class(c);
            assert!(k >= prev);
            prev = k;
        }
    }

    #[test]
    fn clamped_respects_floor() {
        let l = LinkQuality::clamped(1e-9, 0.01);
        assert!((l.prr() - 0.01).abs() < 1e-12);
        let h = LinkQuality::clamped(5.0, 0.01);
        assert_eq!(h.prr(), 1.0);
    }

    #[test]
    #[should_panic(expected = "PRR must be in (0,1]")]
    fn rejects_zero_prr() {
        let _ = LinkQuality::new(0.0);
    }
}
