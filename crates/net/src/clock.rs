//! Clocks and local synchronization error (paper §III-B).
//!
//! The system model assumes *local synchronization*: "a sender knows
//! when it shall wake up to transmit a packet to each of its neighbors
//! according to their working schedules", citing low-cost protocols
//! (references 26 and 27 of the paper). Real clocks drift, so that knowledge is only
//! accurate up to a residual error that grows between re-synchronisation
//! points. This module provides
//!
//! * [`DriftClock`] — a crystal-oscillator clock with a fixed ppm rate
//!   error and phase offset, converting between local and global slots;
//! * [`SyncModel`] — the residual-error envelope of a periodic
//!   re-synchronisation protocol: right after a sync the error is the
//!   protocol's precision; between syncs it grows linearly with the
//!   drift rate;
//! * [`SyncModel::mistiming_probability`] — the probability that a
//!   sender targeting a 1-slot rendezvous misses it, which the simulator
//!   can inject to quantify how sensitive flooding is to the local-sync
//!   assumption (`experiments sync-error`).

use serde::{Deserialize, Serialize};

/// A drifting clock: local time runs at `1 + rate_ppm·1e-6` of global
/// time, with a phase offset (both in slots).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DriftClock {
    /// Rate error in parts per million (crystal tolerance; ±20–50 ppm is
    /// typical for WSN motes).
    pub rate_ppm: f64,
    /// Phase offset in slots at global time 0.
    pub offset_slots: f64,
}

impl DriftClock {
    /// A perfect clock.
    pub fn ideal() -> Self {
        Self {
            rate_ppm: 0.0,
            offset_slots: 0.0,
        }
    }

    /// Local reading (in slots, fractional) at global slot `t`.
    pub fn local_at(&self, t: u64) -> f64 {
        self.offset_slots + t as f64 * (1.0 + self.rate_ppm * 1e-6)
    }

    /// Phase error (local − global) at global slot `t`, in slots.
    pub fn error_at(&self, t: u64) -> f64 {
        self.local_at(t) - t as f64
    }

    /// Global slots until the accumulated phase error reaches `budget`
    /// slots (infinite for a perfect clock). This bounds how often two
    /// neighbors must re-synchronise to keep a 1-slot rendezvous.
    pub fn slots_to_drift(&self, budget: f64) -> f64 {
        assert!(budget > 0.0);
        if self.rate_ppm == 0.0 {
            f64::INFINITY
        } else {
            budget / (self.rate_ppm.abs() * 1e-6)
        }
    }
}

/// Residual-error envelope of a periodic local-synchronisation protocol.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SyncModel {
    /// Precision right after a sync exchange, in slots (protocol noise).
    pub precision_slots: f64,
    /// Relative drift rate between two neighbors, ppm.
    pub relative_drift_ppm: f64,
    /// Slots between re-synchronisations.
    pub resync_interval: u64,
}

impl SyncModel {
    /// A model with mote-class numbers: 0.05-slot precision, 40 ppm
    /// relative drift, re-sync every `resync_interval` slots.
    pub fn mote_class(resync_interval: u64) -> Self {
        Self {
            precision_slots: 0.05,
            relative_drift_ppm: 40.0,
            resync_interval,
        }
    }

    /// Worst-case phase error at `dt` slots after the last sync.
    pub fn error_after(&self, dt: u64) -> f64 {
        self.precision_slots + dt as f64 * self.relative_drift_ppm * 1e-6
    }

    /// Worst-case error over a full re-sync period (error at the end).
    pub fn max_error(&self) -> f64 {
        self.error_after(self.resync_interval)
    }

    /// Probability that a sender misses a neighbor's 1-slot active
    /// window, assuming the sync age is uniform over the re-sync period
    /// and the phase error is ± the envelope: a rendezvous fails when
    /// the error exceeds half a slot.
    ///
    /// With `e(dt) = precision + dt·drift`, the miss probability is the
    /// fraction of the period where `e(dt) > 0.5`.
    pub fn mistiming_probability(&self) -> f64 {
        if self.max_error() <= 0.5 {
            return 0.0;
        }
        if self.error_after(0) > 0.5 {
            return 1.0;
        }
        // dt* where the envelope crosses half a slot.
        let dt_star = (0.5 - self.precision_slots) / (self.relative_drift_ppm * 1e-6);
        (1.0 - dt_star / self.resync_interval as f64).clamp(0.0, 1.0)
    }

    /// The longest re-sync interval that keeps the miss probability at
    /// zero (error never exceeds half a slot).
    pub fn max_safe_resync_interval(&self) -> u64 {
        if self.precision_slots > 0.5 {
            return 0;
        }
        ((0.5 - self.precision_slots) / (self.relative_drift_ppm * 1e-6)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_clock_never_errs() {
        let c = DriftClock::ideal();
        assert_eq!(c.error_at(1_000_000), 0.0);
        assert!(c.slots_to_drift(0.5).is_infinite());
    }

    #[test]
    fn drift_accumulates_linearly() {
        let c = DriftClock {
            rate_ppm: 40.0,
            offset_slots: 0.0,
        };
        // 40 ppm: half a slot after 12_500 slots.
        assert!((c.error_at(12_500) - 0.5).abs() < 1e-9);
        assert!((c.slots_to_drift(0.5) - 12_500.0).abs() < 1e-6);
    }

    #[test]
    fn offset_shifts_local_time() {
        let c = DriftClock {
            rate_ppm: 0.0,
            offset_slots: 2.5,
        };
        assert_eq!(c.local_at(10), 12.5);
        assert_eq!(c.error_at(10), 2.5);
    }

    #[test]
    fn frequent_resync_means_no_misses() {
        let s = SyncModel::mote_class(1_000);
        assert!(s.max_error() < 0.5);
        assert_eq!(s.mistiming_probability(), 0.0);
    }

    #[test]
    fn stale_sync_misses_rendezvous() {
        let s = SyncModel::mote_class(100_000);
        assert!(s.max_error() > 0.5);
        let p = s.mistiming_probability();
        assert!(p > 0.0 && p < 1.0, "partial misses, got {p}");
        // A hopeless protocol (precision worse than half a slot) always
        // misses.
        let bad = SyncModel {
            precision_slots: 0.6,
            ..s
        };
        assert_eq!(bad.mistiming_probability(), 1.0);
    }

    #[test]
    fn miss_probability_grows_with_interval() {
        let mut prev = 0.0;
        for interval in [5_000u64, 20_000, 50_000, 200_000] {
            let p = SyncModel::mote_class(interval).mistiming_probability();
            assert!(p >= prev);
            prev = p;
        }
    }

    #[test]
    fn safe_interval_matches_envelope() {
        let s = SyncModel::mote_class(123);
        let safe = s.max_safe_resync_interval();
        assert!(SyncModel::mote_class(safe).mistiming_probability() == 0.0);
        assert!(SyncModel::mote_class(safe + 1000).mistiming_probability() > 0.0);
    }
}
