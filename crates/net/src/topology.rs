//! Network topology: adjacency with per-link quality, generators, and
//! graph queries.
//!
//! The paper's evaluation (§V) runs over a 298-node topology with link
//! qualities derived from long-term RSSI measurements. This module holds
//! the graph representation and generic builders; the GreenOrbs-style
//! trace generator lives in `ldcf-trace`.

use crate::bitset;
use crate::link::{Link, LinkQuality};
use crate::node::{NodeId, Position};
use serde::{Deserialize, Serialize, Value};
use std::collections::BinaryHeap;

/// An undirected-connectivity, directed-quality network graph.
///
/// Adjacency is stored per node as `(neighbor, quality)` lists sorted by
/// neighbor id. Qualities are directional (`quality(a→b)` may differ from
/// `quality(b→a)`), but an edge is present in both directions whenever it
/// is present in one — real deployments have asymmetric PRR but symmetric
/// audibility at the carrier-sense level, which the MAC model relies on.
///
/// Beside the quality lists, adjacency is mirrored into packed per-node
/// bitset rows so [`Topology::are_neighbors`] (the MAC's carrier-sense
/// probe, asked `O(intents²)` times per slot) is a single word test
/// instead of a binary search. The rows are maintained by every
/// mutation path (all of which funnel through [`Topology::set_quality`])
/// and rebuilt on deserialization; they are never serialized.
///
/// The mirror is dense — `n² / 8` bytes — so it exists only up to
/// [`Topology::DENSE_MIRROR_MAX`] nodes (16 GiB at 1M nodes would dwarf
/// the graph itself). Above that, [`Topology::neighbor_words`] returns
/// `None` and every caller falls back to the sorted adjacency lists;
/// [`Topology::are_neighbors`] becomes a binary search.
#[derive(Clone, Debug)]
pub struct Topology {
    /// `adj[i]` = outgoing links of node `i`, sorted by target id.
    adj: Vec<Vec<(NodeId, LinkQuality)>>,
    /// Optional node positions (used by geometric generators / traces).
    positions: Option<Vec<Position>>,
    /// `words[i]` = bitset over target ids of node `i`'s outgoing links
    /// (`words_per_row` words per node, flattened). Empty when the
    /// dense mirror is disabled (large `n`).
    words: Vec<u64>,
    /// Row stride of `words`.
    words_per_row: usize,
}

impl Topology {
    /// Largest node count for which the dense adjacency mirror is kept
    /// (32 MiB of rows at this size; the mirror grows as `n²/8` bytes,
    /// which at 100k–1M nodes would cost gigabytes to terabytes for a
    /// graph whose lists fit in megabytes).
    pub const DENSE_MIRROR_MAX: usize = 16_384;

    /// An edgeless topology over `n_nodes` nodes (source + sensors).
    pub fn empty(n_nodes: usize) -> Self {
        assert!(n_nodes >= 1, "topology needs at least the source node");
        let words_per_row = bitset::words_for(n_nodes);
        let words = if n_nodes <= Self::DENSE_MIRROR_MAX {
            vec![0; n_nodes * words_per_row]
        } else {
            Vec::new()
        };
        Self {
            adj: vec![Vec::new(); n_nodes],
            positions: None,
            words,
            words_per_row,
        }
    }

    /// Drop the dense adjacency mirror, forcing every word-row query
    /// down the sparse fallback path. Differential tests use this to
    /// prove the fallbacks byte-identical to the mirrored paths on
    /// small graphs; at scale the mirror is absent to begin with.
    pub fn without_dense_mirror(mut self) -> Self {
        self.words = Vec::new();
        self
    }

    /// Build from a list of directed links; missing reverse directions are
    /// added with the same quality (symmetric default).
    pub fn from_links(n_nodes: usize, links: impl IntoIterator<Item = Link>) -> Self {
        let mut topo = Self::empty(n_nodes);
        for l in links {
            topo.add_symmetric_if_absent(l.from, l.to, l.quality);
        }
        topo
    }

    /// Attach node positions (same length as node count).
    pub fn with_positions(mut self, positions: Vec<Position>) -> Self {
        assert_eq!(positions.len(), self.adj.len());
        self.positions = Some(positions);
        self
    }

    /// Total number of nodes including the source.
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of nominal sensors `N` (all nodes except the source).
    #[inline]
    pub fn n_sensors(&self) -> usize {
        self.adj.len() - 1
    }

    /// Node positions, if the topology is geometric.
    pub fn positions(&self) -> Option<&[Position]> {
        self.positions.as_deref()
    }

    /// Set the directed quality `from → to`, inserting the edge if absent.
    pub fn set_quality(&mut self, from: NodeId, to: NodeId, q: LinkQuality) {
        assert_ne!(from, to, "self-links are not allowed");
        let list = &mut self.adj[from.index()];
        match list.binary_search_by_key(&to, |&(n, _)| n) {
            Ok(i) => list[i].1 = q,
            Err(i) => list.insert(i, (to, q)),
        }
        if !self.words.is_empty() {
            bitset::set_bit(self.neighbor_words_mut(from), to.index());
        }
    }

    /// Add an edge in both directions with the given per-direction
    /// qualities, overwriting existing entries.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId, q_ab: LinkQuality, q_ba: LinkQuality) {
        self.set_quality(a, b, q_ab);
        self.set_quality(b, a, q_ba);
    }

    fn add_symmetric_if_absent(&mut self, a: NodeId, b: NodeId, q: LinkQuality) {
        if self.quality(a, b).is_none() {
            self.set_quality(a, b, q);
        }
        if self.quality(b, a).is_none() {
            self.set_quality(b, a, q);
        }
    }

    /// Directed link quality `from → to`, if the link exists.
    pub fn quality(&self, from: NodeId, to: NodeId) -> Option<LinkQuality> {
        let list = &self.adj[from.index()];
        list.binary_search_by_key(&to, |&(n, _)| n)
            .ok()
            .map(|i| list[i].1)
    }

    /// Whether `a` and `b` are neighbors (audible to each other).
    #[inline]
    pub fn are_neighbors(&self, a: NodeId, b: NodeId) -> bool {
        match self.neighbor_words(a) {
            Some(row) => bitset::test_bit(row, b.index()),
            None => self.adj[a.index()]
                .binary_search_by_key(&b, |&(n, _)| n)
                .is_ok(),
        }
    }

    /// Outgoing neighbors of `node` with link qualities, sorted by id.
    pub fn neighbors(&self, node: NodeId) -> &[(NodeId, LinkQuality)] {
        &self.adj[node.index()]
    }

    /// Packed bitset row over the target ids of `node`'s outgoing links
    /// ([`crate::bitset::words_for`]`(n_nodes)` words). Hot paths
    /// intersect this with awake/possession sets instead of scanning
    /// [`Topology::neighbors`]. `None` when the dense mirror is absent
    /// (more than [`Topology::DENSE_MIRROR_MAX`] nodes, or explicitly
    /// dropped) — callers must then walk the sorted adjacency list,
    /// which visits the same ids in the same ascending order.
    #[inline]
    pub fn neighbor_words(&self, node: NodeId) -> Option<&[u64]> {
        if self.words.is_empty() {
            return None;
        }
        let start = node.index() * self.words_per_row;
        Some(&self.words[start..start + self.words_per_row])
    }

    /// Words per [`Topology::neighbor_words`] row.
    #[inline]
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    #[inline]
    fn neighbor_words_mut(&mut self, node: NodeId) -> &mut [u64] {
        let start = node.index() * self.words_per_row;
        &mut self.words[start..start + self.words_per_row]
    }

    /// Degree of `node`.
    pub fn degree(&self, node: NodeId) -> usize {
        self.adj[node.index()].len()
    }

    /// Total number of undirected edges.
    pub fn n_edges(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Mean PRR over all directed links; `None` for an edgeless graph.
    pub fn mean_link_quality(&self) -> Option<f64> {
        let mut sum = 0.0;
        let mut count = 0usize;
        for list in &self.adj {
            for &(_, q) in list {
                sum += q.prr();
                count += 1;
            }
        }
        (count > 0).then(|| sum / count as f64)
    }

    /// Iterate over all directed links.
    pub fn links(&self) -> impl Iterator<Item = Link> + '_ {
        self.adj.iter().enumerate().flat_map(|(i, list)| {
            list.iter().map(move |&(to, quality)| Link {
                from: NodeId::from(i),
                to,
                quality,
            })
        })
    }

    /// BFS hop distances from `root`; unreachable nodes get `u32::MAX`.
    pub fn hop_distances(&self, root: NodeId) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.n_nodes()];
        let mut queue = std::collections::VecDeque::new();
        dist[root.index()] = 0;
        queue.push_back(root);
        while let Some(u) = queue.pop_front() {
            let d = dist[u.index()];
            for &(v, _) in self.neighbors(u) {
                if dist[v.index()] == u32::MAX {
                    dist[v.index()] = d + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// Whether every node is reachable from the source.
    pub fn is_connected(&self) -> bool {
        self.hop_distances(crate::SOURCE)
            .iter()
            .all(|&d| d != u32::MAX)
    }

    /// Hop eccentricity of the source: max hop distance to any reachable
    /// node. This approximates the network "depth" a flood traverses.
    pub fn source_eccentricity(&self) -> u32 {
        self.hop_distances(crate::SOURCE)
            .into_iter()
            .filter(|&d| d != u32::MAX)
            .max()
            .unwrap_or(0)
    }

    /// ETX shortest-path distances from `root` (Dijkstra over `1/PRR`
    /// edge costs). Returns `(costs, parents)`; unreachable nodes get
    /// `f64::INFINITY` and no parent. This is the "optimal energy tree"
    /// substrate used by Opportunistic Flooding (§II, §V-A).
    pub fn etx_tree(&self, root: NodeId) -> (Vec<f64>, Vec<Option<NodeId>>) {
        let n = self.n_nodes();
        let mut cost = vec![f64::INFINITY; n];
        let mut parent: Vec<Option<NodeId>> = vec![None; n];
        let mut heap = BinaryHeap::new();
        cost[root.index()] = 0.0;
        heap.push(DijkstraEntry {
            cost: 0.0,
            node: root,
        });
        while let Some(DijkstraEntry { cost: c, node: u }) = heap.pop() {
            if c > cost[u.index()] {
                continue; // stale entry
            }
            for &(v, q) in self.neighbors(u) {
                let nc = c + q.etx();
                if nc < cost[v.index()] {
                    cost[v.index()] = nc;
                    parent[v.index()] = Some(u);
                    heap.push(DijkstraEntry { cost: nc, node: v });
                }
            }
        }
        (cost, parent)
    }

    // ----- generators --------------------------------------------------

    /// A line (path) topology `0 - 1 - ... - n-1` with uniform quality.
    pub fn line(n_nodes: usize, quality: LinkQuality) -> Self {
        let mut topo = Self::empty(n_nodes);
        for i in 1..n_nodes {
            topo.add_edge(NodeId::from(i - 1), NodeId::from(i), quality, quality);
        }
        topo
    }

    /// A `rows × cols` grid with the source at cell (0,0) and uniform
    /// quality; 4-neighborhood.
    pub fn grid(rows: usize, cols: usize, quality: LinkQuality) -> Self {
        assert!(rows >= 1 && cols >= 1);
        let mut topo = Self::empty(rows * cols);
        let id = |r: usize, c: usize| NodeId::from(r * cols + c);
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    topo.add_edge(id(r, c), id(r, c + 1), quality, quality);
                }
                if r + 1 < rows {
                    topo.add_edge(id(r, c), id(r + 1, c), quality, quality);
                }
            }
        }
        let positions = (0..rows * cols)
            .map(|i| Position::new((i % cols) as f64 * 10.0, (i / cols) as f64 * 10.0))
            .collect();
        topo.with_positions(positions)
    }

    /// A Manhattan street-grid radio topology (cf. *Fast Flooding over
    /// Manhattan*, Clementi et al.): nodes sit on a `rows × cols`
    /// lattice of street intersections, and a radio reaches every
    /// intersection up to `reach` blocks away *along the same street or
    /// avenue* — line-of-sight down the urban canyon — while buildings
    /// block all other directions. Link quality decays linearly from
    /// `q_adjacent` (one block) to `q_at_reach` (`reach` blocks), same
    /// direction both ways. With `reach == 1` this is [`Topology::grid`]
    /// with uniform quality `q_adjacent`. The source sits at (0,0).
    pub fn manhattan(
        rows: usize,
        cols: usize,
        reach: usize,
        q_adjacent: f64,
        q_at_reach: f64,
    ) -> Self {
        assert!(rows >= 1 && cols >= 1);
        assert!(reach >= 1);
        assert!(q_adjacent >= q_at_reach && q_at_reach > 0.0 && q_adjacent <= 1.0);
        let mut topo = Self::empty(rows * cols);
        let id = |r: usize, c: usize| NodeId::from(r * cols + c);
        let q_of = |k: usize| {
            let frac = if reach == 1 {
                0.0
            } else {
                (k - 1) as f64 / (reach - 1) as f64
            };
            LinkQuality::clamped(q_adjacent + (q_at_reach - q_adjacent) * frac, 0.05)
        };
        for r in 0..rows {
            for c in 0..cols {
                for k in 1..=reach {
                    if c + k < cols {
                        topo.add_edge(id(r, c), id(r, c + k), q_of(k), q_of(k));
                    }
                    if r + k < rows {
                        topo.add_edge(id(r, c), id(r + k, c), q_of(k), q_of(k));
                    }
                }
            }
        }
        let positions = (0..rows * cols)
            .map(|i| Position::new((i % cols) as f64 * 10.0, (i / cols) as f64 * 10.0))
            .collect();
        topo.with_positions(positions)
    }

    /// A complete graph with uniform quality (useful for theory tests
    /// where every pair can communicate, matching Algorithm 1's setting).
    pub fn complete(n_nodes: usize, quality: LinkQuality) -> Self {
        let mut topo = Self::empty(n_nodes);
        for a in 0..n_nodes {
            for b in (a + 1)..n_nodes {
                topo.add_edge(NodeId::from(a), NodeId::from(b), quality, quality);
            }
        }
        topo
    }

    /// Random geometric graph: `n_nodes` uniform positions in a
    /// `side × side` square, edges within `radius`, quality decaying with
    /// distance from `q_near` (touching) to `q_far` (at radius).
    ///
    /// Candidate pairs come from a cell grid of side `radius` (each node
    /// only checked against its 3×3 cell neighborhood), so generation is
    /// O(n + edges) instead of O(n²) — the difference between minutes
    /// and never at 1M nodes. The RNG draw sequence is *identical* to
    /// the old all-pairs sweep: positions first, then exactly one jitter
    /// draw per in-radius pair in ascending `(a, b)` lexicographic
    /// order, so every seeded topology (and every scenario digest pinned
    /// in CI) reproduces byte-for-byte.
    pub fn random_geometric<R: rand::Rng + ?Sized>(
        n_nodes: usize,
        side: f64,
        radius: f64,
        q_near: f64,
        q_far: f64,
        rng: &mut R,
    ) -> Self {
        assert!(q_near >= q_far && q_far > 0.0 && q_near <= 1.0);
        assert!(radius > 0.0 && side > 0.0);
        let positions: Vec<Position> = (0..n_nodes)
            .map(|_| Position::new(rng.random_range(0.0..side), rng.random_range(0.0..side)))
            .collect();
        // Bucket nodes into cells of side `radius`: any in-radius pair
        // lives in the same or an adjacent cell.
        let ncells = (side / radius).ceil().max(1.0) as usize;
        let cell_of = |p: &Position| {
            let cx = ((p.x / radius) as usize).min(ncells - 1);
            let cy = ((p.y / radius) as usize).min(ncells - 1);
            cy * ncells + cx
        };
        let mut cells: Vec<Vec<u32>> = vec![Vec::new(); ncells * ncells];
        for (i, p) in positions.iter().enumerate() {
            cells[cell_of(p)].push(i as u32);
        }
        let mut topo = Self::empty(n_nodes);
        let mut cands: Vec<u32> = Vec::new();
        for a in 0..n_nodes {
            let pa = &positions[a];
            let cx = ((pa.x / radius) as usize).min(ncells - 1);
            let cy = ((pa.y / radius) as usize).min(ncells - 1);
            cands.clear();
            for dy in cy.saturating_sub(1)..(cy + 2).min(ncells) {
                for dx in cx.saturating_sub(1)..(cx + 2).min(ncells) {
                    for &b in &cells[dy * ncells + dx] {
                        if b as usize > a {
                            cands.push(b);
                        }
                    }
                }
            }
            // Ascending b restores the all-pairs sweep's draw order.
            cands.sort_unstable();
            for &b in &cands {
                let b = b as usize;
                let d = pa.distance(&positions[b]);
                if d <= radius {
                    let frac = d / radius;
                    let q = q_near + (q_far - q_near) * frac;
                    // Mild asymmetry, as in real deployments.
                    let jitter = 0.05 * (rng.random::<f64>() - 0.5);
                    let q_ab = LinkQuality::clamped(q + jitter, 0.05);
                    let q_ba = LinkQuality::clamped(q - jitter, 0.05);
                    topo.add_edge(NodeId::from(a), NodeId::from(b), q_ab, q_ba);
                }
            }
        }
        topo.with_positions(positions)
    }
}

// Manual serde impls: the wire format carries only `adj` and
// `positions` (exactly what the former derive emitted); the packed
// adjacency rows are derived state, rebuilt on deserialization.
impl Serialize for Topology {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("adj".into(), self.adj.to_value()),
            ("positions".into(), self.positions.to_value()),
        ])
    }
}

impl Deserialize for Topology {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let adj: Vec<Vec<(NodeId, LinkQuality)>> = Deserialize::from_value(
            v.get("adj")
                .ok_or_else(|| serde::Error::custom("Topology: missing field 'adj'"))?,
        )?;
        let positions: Option<Vec<Position>> = match v.get("positions") {
            Some(p) => Deserialize::from_value(p)?,
            None => None,
        };
        let n = adj.len();
        if n == 0 {
            return Err(serde::Error::custom("Topology: empty adjacency"));
        }
        for list in &adj {
            for &(to, _) in list {
                if to.index() >= n {
                    return Err(serde::Error::custom("Topology: neighbor id out of range"));
                }
            }
        }
        let words_per_row = bitset::words_for(n);
        let mut words = Vec::new();
        if n <= Self::DENSE_MIRROR_MAX {
            words = vec![0u64; n * words_per_row];
            for (i, list) in adj.iter().enumerate() {
                let row = &mut words[i * words_per_row..(i + 1) * words_per_row];
                for &(to, _) in list {
                    bitset::set_bit(row, to.index());
                }
            }
        }
        Ok(Self {
            adj,
            positions,
            words,
            words_per_row,
        })
    }
}

/// Min-heap entry for Dijkstra (BinaryHeap is a max-heap, so order is
/// reversed on cost).
#[derive(PartialEq)]
struct DijkstraEntry {
    cost: f64,
    node: NodeId,
}

impl Eq for DijkstraEntry {}

impl PartialOrd for DijkstraEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for DijkstraEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: smallest cost first. Costs are finite ETX sums.
        other
            .cost
            .partial_cmp(&self.cost)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const Q: LinkQuality = LinkQuality::PERFECT;

    #[test]
    fn line_structure() {
        let t = Topology::line(5, Q);
        assert_eq!(t.n_nodes(), 5);
        assert_eq!(t.n_sensors(), 4);
        assert_eq!(t.n_edges(), 4);
        assert_eq!(t.degree(NodeId(0)), 1);
        assert_eq!(t.degree(NodeId(2)), 2);
        assert!(t.are_neighbors(NodeId(1), NodeId(2)));
        assert!(!t.are_neighbors(NodeId(0), NodeId(2)));
        assert!(t.is_connected());
        assert_eq!(t.source_eccentricity(), 4);
    }

    #[test]
    fn grid_structure() {
        let t = Topology::grid(3, 4, Q);
        assert_eq!(t.n_nodes(), 12);
        assert_eq!(t.n_edges(), 3 * 3 + 2 * 4); // rows*(cols-1) + (rows-1)*cols
        assert!(t.is_connected());
        assert_eq!(t.source_eccentricity(), 2 + 3);
        assert!(t.positions().is_some());
    }

    #[test]
    fn manhattan_structure() {
        // reach 2: each intersection also hears two blocks down-street.
        let t = Topology::manhattan(3, 4, 2, 0.9, 0.5);
        assert_eq!(t.n_nodes(), 12);
        // 1-block links as in the grid, plus 2-block links:
        // rows*(cols-2)=6 horizontal + (rows-2)*cols=4 vertical.
        assert_eq!(t.n_edges(), (3 * 3 + 2 * 4) + 10);
        assert!(t.is_connected());
        assert!(t.positions().is_some());
        // Line-of-sight: (0,0) hears (0,2) but never the diagonal (1,1).
        assert!(t.are_neighbors(NodeId(0), NodeId(2)));
        assert!(!t.are_neighbors(NodeId(0), NodeId(5)));
        // Quality decays with block distance.
        let near = t.quality(NodeId(0), NodeId(1)).unwrap().prr();
        let far = t.quality(NodeId(0), NodeId(2)).unwrap().prr();
        assert!((near - 0.9).abs() < 1e-12);
        assert!((far - 0.5).abs() < 1e-12);
        // reach 1 degenerates to the plain grid.
        let g = Topology::manhattan(3, 4, 1, 0.9, 0.9);
        assert_eq!(g.n_edges(), Topology::grid(3, 4, Q).n_edges());
    }

    #[test]
    fn complete_structure() {
        let t = Topology::complete(6, Q);
        assert_eq!(t.n_edges(), 15);
        assert_eq!(t.source_eccentricity(), 1);
        for i in 0..6 {
            assert_eq!(t.degree(NodeId(i)), 5);
        }
    }

    #[test]
    fn hop_distances_line() {
        let t = Topology::line(4, Q);
        assert_eq!(t.hop_distances(NodeId(0)), vec![0, 1, 2, 3]);
        assert_eq!(t.hop_distances(NodeId(2)), vec![2, 1, 0, 1]);
    }

    #[test]
    fn disconnected_detected() {
        let mut t = Topology::empty(4);
        t.add_edge(NodeId(0), NodeId(1), Q, Q);
        // nodes 2, 3 isolated
        assert!(!t.is_connected());
        let d = t.hop_distances(NodeId(0));
        assert_eq!(d[2], u32::MAX);
    }

    #[test]
    fn directed_quality_is_directional() {
        let mut t = Topology::empty(2);
        t.add_edge(
            NodeId(0),
            NodeId(1),
            LinkQuality::new(0.9),
            LinkQuality::new(0.4),
        );
        assert!((t.quality(NodeId(0), NodeId(1)).unwrap().prr() - 0.9).abs() < 1e-12);
        assert!((t.quality(NodeId(1), NodeId(0)).unwrap().prr() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn etx_tree_prefers_good_links() {
        // 0 -(0.5)- 1 -(0.5)- 2 versus direct 0 -(0.2)- 2:
        // via 1: 2 + 2 = 4 ETX; direct: 5 ETX -> parent(2) = 1.
        let mut t = Topology::empty(3);
        t.add_edge(
            NodeId(0),
            NodeId(1),
            LinkQuality::new(0.5),
            LinkQuality::new(0.5),
        );
        t.add_edge(
            NodeId(1),
            NodeId(2),
            LinkQuality::new(0.5),
            LinkQuality::new(0.5),
        );
        t.add_edge(
            NodeId(0),
            NodeId(2),
            LinkQuality::new(0.2),
            LinkQuality::new(0.2),
        );
        let (cost, parent) = t.etx_tree(NodeId(0));
        assert!((cost[2] - 4.0).abs() < 1e-9);
        assert_eq!(parent[2], Some(NodeId(1)));
        assert_eq!(parent[1], Some(NodeId(0)));
        assert_eq!(parent[0], None);
    }

    #[test]
    fn etx_tree_unreachable_is_infinite() {
        let t = Topology::empty(3);
        let (cost, parent) = t.etx_tree(NodeId(0));
        assert_eq!(cost[0], 0.0);
        assert!(cost[1].is_infinite() && cost[2].is_infinite());
        assert_eq!(parent[1], None);
    }

    #[test]
    fn random_geometric_basics() {
        let mut rng = StdRng::seed_from_u64(11);
        let t = Topology::random_geometric(60, 100.0, 30.0, 0.95, 0.3, &mut rng);
        assert_eq!(t.n_nodes(), 60);
        // With radius 30 in a 100x100 square, 60 nodes is typically connected.
        assert!(t.n_edges() > 60);
        let mq = t.mean_link_quality().unwrap();
        assert!(mq > 0.3 && mq < 1.0, "mean quality {mq}");
        // Symmetric audibility even with asymmetric quality.
        for l in t.links() {
            assert!(t.are_neighbors(l.to, l.from));
        }
    }

    #[test]
    fn mean_quality_of_empty_graph_is_none() {
        assert!(Topology::empty(3).mean_link_quality().is_none());
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn rejects_self_link() {
        let mut t = Topology::empty(2);
        t.set_quality(NodeId(1), NodeId(1), Q);
    }

    #[test]
    fn neighbor_words_mirror_adjacency() {
        let mut rng = StdRng::seed_from_u64(5);
        for t in [
            Topology::line(70, Q),
            Topology::grid(9, 9, Q),
            Topology::complete(65, Q),
            Topology::random_geometric(80, 100.0, 25.0, 0.9, 0.3, &mut rng),
        ] {
            for a in 0..t.n_nodes() {
                let a = NodeId::from(a);
                let from_words: Vec<usize> =
                    crate::bitset::iter_ones(t.neighbor_words(a).expect("small graph is mirrored"))
                        .collect();
                let from_lists: Vec<usize> =
                    t.neighbors(a).iter().map(|&(v, _)| v.index()).collect();
                assert_eq!(from_words, from_lists);
                for b in 0..t.n_nodes() {
                    let b = NodeId::from(b);
                    assert_eq!(t.are_neighbors(a, b), t.quality(a, b).is_some());
                }
            }
        }
    }

    #[test]
    fn sparse_fallback_matches_dense_mirror() {
        let mut rng = StdRng::seed_from_u64(17);
        let dense = Topology::random_geometric(90, 100.0, 25.0, 0.9, 0.3, &mut rng);
        let sparse = dense.clone().without_dense_mirror();
        assert!(sparse.neighbor_words(NodeId(0)).is_none());
        assert_eq!(sparse.words_per_row(), dense.words_per_row());
        for a in 0..dense.n_nodes() {
            let a = NodeId::from(a);
            assert_eq!(sparse.neighbors(a), dense.neighbors(a));
            for b in 0..dense.n_nodes() {
                let b = NodeId::from(b);
                assert_eq!(sparse.are_neighbors(a, b), dense.are_neighbors(a, b));
            }
        }
        // Mutation keeps working without the mirror.
        let mut sparse = sparse;
        sparse.add_edge(NodeId(0), NodeId(89), Q, Q);
        assert!(sparse.are_neighbors(NodeId(0), NodeId(89)));
        assert!(sparse.are_neighbors(NodeId(89), NodeId(0)));
    }

    /// The old all-pairs generator, kept verbatim as the reference the
    /// cell-bucketed one must reproduce draw for draw.
    fn random_geometric_reference<R: rand::Rng + ?Sized>(
        n_nodes: usize,
        side: f64,
        radius: f64,
        q_near: f64,
        q_far: f64,
        rng: &mut R,
    ) -> Topology {
        let positions: Vec<Position> = (0..n_nodes)
            .map(|_| Position::new(rng.random_range(0.0..side), rng.random_range(0.0..side)))
            .collect();
        let mut topo = Topology::empty(n_nodes);
        for a in 0..n_nodes {
            for b in (a + 1)..n_nodes {
                let d = positions[a].distance(&positions[b]);
                if d <= radius {
                    let frac = d / radius;
                    let q = q_near + (q_far - q_near) * frac;
                    let jitter = 0.05 * (rng.random::<f64>() - 0.5);
                    let q_ab = LinkQuality::clamped(q + jitter, 0.05);
                    let q_ba = LinkQuality::clamped(q - jitter, 0.05);
                    topo.add_edge(NodeId::from(a), NodeId::from(b), q_ab, q_ba);
                }
            }
        }
        topo.with_positions(positions)
    }

    #[test]
    fn bucketed_random_geometric_reproduces_the_all_pairs_sweep() {
        for seed in [3u64, 11, 42, 77] {
            let mut r1 = StdRng::seed_from_u64(seed);
            let mut r2 = StdRng::seed_from_u64(seed);
            let got = Topology::random_geometric(120, 100.0, 22.0, 0.9, 0.3, &mut r1);
            let want = random_geometric_reference(120, 100.0, 22.0, 0.9, 0.3, &mut r2);
            assert_eq!(got.n_edges(), want.n_edges(), "seed {seed}");
            for a in 0..got.n_nodes() {
                let a = NodeId::from(a);
                assert_eq!(got.neighbors(a), want.neighbors(a), "seed {seed} node {a}");
            }
            assert_eq!(got.positions(), want.positions());
            // Both consumed the same number of draws.
            use rand::Rng;
            assert_eq!(r1.random::<u64>(), r2.random::<u64>(), "seed {seed}");
        }
    }

    #[test]
    fn serde_roundtrip_rebuilds_words() {
        use serde::{Deserialize as _, Serialize as _};
        let t = Topology::grid(4, 5, Q);
        let v = t.to_value();
        // The wire format carries only the quality lists.
        assert!(v.get("adj").is_some());
        assert!(v.get("positions").is_some());
        assert!(v.get("words").is_none());
        let back = Topology::from_value(&v).unwrap();
        assert_eq!(back.n_nodes(), t.n_nodes());
        assert_eq!(back.n_edges(), t.n_edges());
        for a in 0..t.n_nodes() {
            let a = NodeId::from(a);
            assert_eq!(
                back.neighbor_words(a).expect("small graph is mirrored"),
                t.neighbor_words(a).expect("small graph is mirrored")
            );
            assert_eq!(back.neighbors(a), t.neighbors(a));
        }
        assert!(back.positions().is_some());
    }
}
