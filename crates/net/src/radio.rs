//! Semi-duplex radio model (paper §III-B).
//!
//! "The radio equipped in each sensor is semi-duplex, i.e., a sensor can
//! either transmit or receive a packet at any given time slot, but not
//! both." A dormant sensor keeps only a timer running; it can wake to
//! transmit at any slot but can receive only within its own active slots.

use serde::{Deserialize, Serialize};

/// Radio state of a node within one time slot.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum RadioState {
    /// Radio off; only the wake-up timer runs (dormant state).
    #[default]
    Sleep,
    /// Radio on, listening in an active slot, not yet receiving.
    Listen,
    /// Transmitting a unicast this slot (possible even from a dormant
    /// schedule slot — the timer wakes the node on demand).
    Transmit,
    /// Receiving a unicast this slot (only possible while active).
    Receive,
}

impl RadioState {
    /// Whether the semi-duplex radio may start a transmission from this
    /// state within the same slot.
    pub fn can_transmit(self) -> bool {
        matches!(self, RadioState::Sleep | RadioState::Listen)
    }

    /// Whether the radio may accept an incoming packet in this state.
    /// Only a listening (active, non-transmitting) radio can receive.
    pub fn can_receive(self) -> bool {
        matches!(self, RadioState::Listen)
    }
}

/// Check a per-slot state transition table for semi-duplex legality:
/// a node never transmits and receives in the same slot.
pub fn is_legal_slot(states: &[RadioState]) -> bool {
    // A slot assignment is a single state per node, so illegal combined
    // states cannot even be represented; this helper exists to make the
    // invariant explicit for callers that build slot plans incrementally.
    states.iter().all(|s| {
        matches!(
            s,
            RadioState::Sleep | RadioState::Listen | RadioState::Transmit | RadioState::Receive
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn semi_duplex_rules() {
        assert!(RadioState::Sleep.can_transmit()); // wake-on-demand to send
        assert!(RadioState::Listen.can_transmit());
        assert!(!RadioState::Transmit.can_transmit());
        assert!(!RadioState::Receive.can_transmit());

        assert!(RadioState::Listen.can_receive());
        assert!(!RadioState::Sleep.can_receive()); // dormant: no reception
        assert!(!RadioState::Transmit.can_receive()); // semi-duplex
    }

    #[test]
    fn default_is_sleep() {
        assert_eq!(RadioState::default(), RadioState::Sleep);
    }

    #[test]
    fn all_single_states_legal() {
        use RadioState::*;
        assert!(is_legal_slot(&[Sleep, Listen, Transmit, Receive]));
    }
}
