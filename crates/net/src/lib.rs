//! # ldcf-net — network substrate for low-duty-cycle WSN flooding
//!
//! This crate implements the network model of *"Understanding the Flooding
//! in Low-Duty-Cycle Wireless Sensor Networks"* (ICPP 2011, §III):
//!
//! * **Slotted time** — the time axis is divided into equal-length slots,
//!   each long enough for one packet transmission ([`schedule`]).
//! * **Periodic working schedules** — every sensor repeats a `T`-slot
//!   schedule, active in a small subset of slots (duty ratio `a/T`, low
//!   duty cycle means ≤ 5 %) ([`schedule::WorkingSchedule`]).
//! * **Local synchronization** — a sender knows the working schedules of
//!   its neighbors and can wake itself to transmit into a neighbor's
//!   active slot ([`sync::NeighborTable`]); clock drift and the residual
//!   error of periodic re-synchronisation are modelled in [`clock`].
//! * **Semi-duplex radios** — a node can transmit *or* receive in a slot,
//!   never both ([`radio`]).
//! * **Unreliable links** — each directed link has a packet-reception
//!   ratio (PRR); flooding is achieved through lossy unicasts
//!   ([`link::LinkQuality`]).
//! * **Topologies** — adjacency graphs with per-link quality, plus
//!   generators (line, grid, random-geometric, clustered) and graph
//!   queries (connectivity, hop distance, ETX shortest paths)
//!   ([`topology::Topology`]).
//!
//! The node with [`NodeId`] 0 is always the flooding **source**; nodes
//! `1..=N` are the *nominal sensors* (paper §III-A).

#![warn(missing_docs)]

pub mod bitset;
pub mod clock;
pub mod link;
pub mod node;
pub mod packet;
pub mod radio;
pub mod schedule;
pub mod sync;
pub mod topology;

pub use clock::{DriftClock, SyncModel};
pub use link::LinkQuality;
pub use node::NodeId;
pub use packet::{Packet, PacketId};
pub use radio::RadioState;
pub use schedule::WorkingSchedule;
pub use sync::NeighborTable;
pub use topology::Topology;

/// The conventional node id of the flooding source (paper §III-A: "A unique
/// ID numbered from 1 to N is assigned to each sensor and the source node
/// has ID 0").
pub const SOURCE: NodeId = NodeId(0);
