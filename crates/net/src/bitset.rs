//! Packed `u64`-word bitsets for the simulator's hot paths.
//!
//! The per-slot loops of the engine ask the same three questions many
//! times: *is this node awake*, *are these two nodes neighbors*, *does
//! this node hold that packet*. All three are membership tests over
//! index sets bounded by the node or packet count, so they pack into
//! `u64` words: one probe instead of a binary search, and set algebra
//! (awake ∩ neighbors ∩ ¬down) becomes a handful of word ANDs.
//!
//! The helpers here are deliberately free functions over `&[u64]` /
//! `&mut [u64]` slices rather than an owned type: the possession matrix
//! and adjacency rows want to live flattened inside their owners'
//! allocations, and slices keep them borrowable row by row.

/// Number of `u64` words needed to hold `n` bits.
#[inline]
pub const fn words_for(n: usize) -> usize {
    n.div_ceil(64)
}

/// Test bit `i`.
#[inline]
pub fn test_bit(words: &[u64], i: usize) -> bool {
    words[i / 64] & (1u64 << (i % 64)) != 0
}

/// Set bit `i`. Returns whether the bit was newly set.
#[inline]
pub fn set_bit(words: &mut [u64], i: usize) -> bool {
    let w = &mut words[i / 64];
    let mask = 1u64 << (i % 64);
    let was = *w & mask != 0;
    *w |= mask;
    !was
}

/// Clear bit `i`.
#[inline]
pub fn clear_bit(words: &mut [u64], i: usize) {
    words[i / 64] &= !(1u64 << (i % 64));
}

/// Zero every word.
#[inline]
pub fn clear_all(words: &mut [u64]) {
    words.fill(0);
}

/// Number of set bits.
#[inline]
pub fn count_ones(words: &[u64]) -> usize {
    words.iter().map(|w| w.count_ones() as usize).sum()
}

/// Whether `a ∩ b` is non-empty (slices may differ in length; missing
/// words are zero).
#[inline]
pub fn intersects(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).any(|(x, y)| x & y != 0)
}

/// Word-occupancy summary of `words` into `out`: bit `w` of `out` is
/// set iff `words[w] != 0`. `out` must hold `words_for(words.len())`
/// words. Summaries let a scan over many candidate rows reject
/// non-intersecting ones 64 words at a time before touching the rows
/// themselves (the wake calendar's next-rendezvous query).
#[inline]
pub fn summarize_into(words: &[u64], out: &mut [u64]) {
    debug_assert!(out.len() >= words_for(words.len()));
    out.fill(0);
    for (w, &word) in words.iter().enumerate() {
        if word != 0 {
            out[w / 64] |= 1u64 << (w % 64);
        }
    }
}

/// Iterate the indices of set bits in ascending order.
#[inline]
pub fn iter_ones(words: &[u64]) -> OnesIter<'_> {
    OnesIter {
        words,
        word_idx: 0,
        current: words.first().copied().unwrap_or(0),
    }
}

/// Iterate the indices of set bits of `a ∩ b` in ascending order.
/// `a` and `b` must be the same length.
#[inline]
pub fn iter_ones_and<'a>(a: &'a [u64], b: &'a [u64]) -> AndOnesIter<'a> {
    debug_assert_eq!(a.len(), b.len());
    AndOnesIter {
        a,
        b,
        word_idx: 0,
        current: match (a.first(), b.first()) {
            (Some(x), Some(y)) => x & y,
            _ => 0,
        },
    }
}

/// Ascending set-bit iterator over one word slice.
#[derive(Clone, Debug)]
pub struct OnesIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for OnesIter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_idx * 64 + bit)
    }
}

/// Ascending set-bit iterator over the intersection of two word slices.
#[derive(Clone, Debug)]
pub struct AndOnesIter<'a> {
    a: &'a [u64],
    b: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for AndOnesIter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.a.len() {
                return None;
            }
            self.current = self.a[self.word_idx] & self.b[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_idx * 64 + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_test_clear_roundtrip() {
        let mut w = vec![0u64; words_for(130)];
        assert_eq!(w.len(), 3);
        assert!(set_bit(&mut w, 0));
        assert!(set_bit(&mut w, 63));
        assert!(set_bit(&mut w, 64));
        assert!(set_bit(&mut w, 129));
        assert!(!set_bit(&mut w, 129), "second set reports not-new");
        assert!(test_bit(&w, 0) && test_bit(&w, 63) && test_bit(&w, 64));
        assert!(!test_bit(&w, 1) && !test_bit(&w, 128));
        assert_eq!(count_ones(&w), 4);
        clear_bit(&mut w, 63);
        assert!(!test_bit(&w, 63));
        assert_eq!(count_ones(&w), 3);
        clear_all(&mut w);
        assert_eq!(count_ones(&w), 0);
    }

    #[test]
    fn iter_ones_is_ascending_and_complete() {
        let mut w = vec![0u64; 3];
        for i in [0usize, 5, 63, 64, 100, 128, 191] {
            set_bit(&mut w, i);
        }
        let got: Vec<usize> = iter_ones(&w).collect();
        assert_eq!(got, vec![0, 5, 63, 64, 100, 128, 191]);
        assert_eq!(iter_ones(&[]).count(), 0);
        assert_eq!(iter_ones(&[0, 0]).count(), 0);
    }

    #[test]
    fn intersection_iterator_matches_filter() {
        let mut a = vec![0u64; 2];
        let mut b = vec![0u64; 2];
        for i in [1usize, 3, 64, 90, 127] {
            set_bit(&mut a, i);
        }
        for i in [3usize, 64, 91, 127] {
            set_bit(&mut b, i);
        }
        let got: Vec<usize> = iter_ones_and(&a, &b).collect();
        assert_eq!(got, vec![3, 64, 127]);
        assert!(intersects(&a, &b));
        assert!(!intersects(&a, &[0, 0]));
        // Length-mismatched `intersects` treats the tail as zeros.
        assert_eq!(intersects(&a, &b[..1]), (a[0] & b[0]) != 0);
    }

    #[test]
    fn summary_marks_exactly_the_nonzero_words() {
        let mut w = vec![0u64; 130];
        set_bit(&mut w, 0); // word 0
        set_bit(&mut w, 64 * 65 + 3); // word 65
        set_bit(&mut w, 64 * 129); // word 129
        let mut s = vec![u64::MAX; words_for(w.len())];
        summarize_into(&w, &mut s);
        let got: Vec<usize> = iter_ones(&s).collect();
        assert_eq!(got, vec![0, 65, 129]);
        clear_bit(&mut w, 64 * 65 + 3);
        summarize_into(&w, &mut s);
        let got: Vec<usize> = iter_ones(&s).collect();
        assert_eq!(got, vec![0, 129]);
    }
}
