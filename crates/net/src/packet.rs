//! Flooding packets (paper §III-C).
//!
//! The source sequentially injects `M` packets, indexed `0..M`. Nodes
//! relay them hop by hop under a FCFS policy. Only the sequence number,
//! origin, and injection time matter to the analysis; payload is opaque.

use crate::NodeId;
use serde::{Deserialize, Serialize};

/// Sequence number of a flooding packet (`p` in the paper, `0..M`).
pub type PacketId = u32;

/// A flooding packet.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Packet {
    /// Sequence number assigned by the source (`p = 0, 1, 2, ...`).
    pub seq: PacketId,
    /// Originating node (the source, id 0, for ordinary floods).
    pub origin: NodeId,
    /// Slot at which the source made the packet ready to send.
    pub injected_at: u64,
}

impl Packet {
    /// A packet injected by the source at slot `injected_at`.
    pub fn from_source(seq: PacketId, injected_at: u64) -> Self {
        Self {
            seq,
            origin: crate::SOURCE,
            injected_at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_packet_has_source_origin() {
        let p = Packet::from_source(3, 10);
        assert_eq!(p.seq, 3);
        assert!(p.origin.is_source());
        assert_eq!(p.injected_at, 10);
    }
}
