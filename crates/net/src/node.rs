//! Node identifiers and per-node metadata.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node in the network.
///
/// Node `0` is the flooding source; nodes `1..=N` are the nominal sensors
/// (paper §III-A). The id doubles as an index into per-node vectors, so it
/// is kept as a plain `u32` newtype.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this node is the flooding source (id 0).
    #[inline]
    pub fn is_source(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_source() {
            write!(f, "src")
        } else {
            write!(f, "n{}", self.0)
        }
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(u32::try_from(v).expect("node index exceeds u32"))
    }
}

/// A 2-D position, used by geometric topology generators and the
/// GreenOrbs-style trace generator.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize, Default)]
pub struct Position {
    /// x coordinate in metres.
    pub x: f64,
    /// y coordinate in metres.
    pub y: f64,
}

impl Position {
    /// Create a position.
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to another position, in metres.
    pub fn distance(&self, other: &Position) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::from(42usize);
        assert_eq!(id.index(), 42);
        assert_eq!(NodeId::from(42u32), id);
        assert!(!id.is_source());
        assert!(NodeId(0).is_source());
    }

    #[test]
    fn display_marks_source() {
        assert_eq!(NodeId(0).to_string(), "src");
        assert_eq!(NodeId(7).to_string(), "n7");
    }

    #[test]
    fn distance_is_euclidean() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Position::new(1.5, -2.0);
        let b = Position::new(-3.0, 7.25);
        assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-12);
    }
}
