//! The HTTP front end: accept loop, connection workers, job
//! scheduler, and routing.
//!
//! Thread layout (all owned by [`ServerHandle`]):
//!
//! * one accept thread — non-blocking listener polled every few
//!   milliseconds so shutdown (signal, `POST /shutdown`, or
//!   [`ServerHandle::stop`]) is observed promptly;
//! * a small pool of connection workers draining an `mpsc` channel —
//!   each connection is one request/response exchange;
//! * `jobs` scheduler workers leasing from the [`JobStore`] and driving
//!   the injected [`CampaignExec`].
//!
//! Graceful shutdown: stop accepting, close the job store (which fires
//! every running job's cancel token so the runner flushes in-flight
//! cell checkpoints), join all threads, return. The process exits 0;
//! interrupted jobs are persisted as `queued` and resume on the next
//! start.

use crate::exec::{CampaignExec, ExecRequest};
use crate::http::{read_request, write_response, Request, Response};
use crate::jobs::{JobStore, SubmitError};
use crate::signal;
use serde::Value;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Bind address, e.g. `127.0.0.1:0` for an ephemeral port.
    pub addr: String,
    /// Data directory: one job directory per campaign digest.
    pub data_dir: PathBuf,
    /// Concurrent campaigns (scheduler workers). Each campaign already
    /// parallelizes over cells via rayon, so a small bound keeps the
    /// box responsive.
    pub jobs: usize,
    /// Connection handler threads.
    pub conn_threads: usize,
    /// Enable `POST /shutdown` (tests and CI; off by default so a
    /// stray request cannot stop a production server).
    pub allow_remote_shutdown: bool,
    /// Poll the process-wide SIGINT/SIGTERM flag (the `serve` CLI
    /// turns this on; in-process test servers leave it off so one
    /// test's signal cannot stop another test's server).
    pub watch_signals: bool,
}

impl ServiceConfig {
    /// Defaults for a data directory: loopback ephemeral port, two
    /// campaign workers, four connection threads.
    pub fn new(data_dir: &std::path::Path) -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            data_dir: data_dir.to_path_buf(),
            jobs: 2,
            conn_threads: 4,
            allow_remote_shutdown: false,
            watch_signals: false,
        }
    }
}

/// A running server. Dropping the handle does **not** stop the server;
/// call [`stop`](Self::stop) or [`wait`](Self::wait).
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    store: Arc<JobStore>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves `:0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The job store (for tests and the embedding CLI).
    pub fn store(&self) -> &Arc<JobStore> {
        &self.store
    }

    /// Request shutdown and block until every thread has drained:
    /// in-flight cells checkpoint, interrupted jobs persist as queued.
    pub fn stop(self) {
        self.stop.store(true, Ordering::SeqCst);
        self.join();
    }

    /// Block until the server shuts down for any reason (signal,
    /// `POST /shutdown`, or a concurrent [`stop`](Self::stop)).
    pub fn wait(self) {
        self.join();
    }

    fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// Start a server: bind, rescan the data directory (resuming
/// interrupted jobs), and spawn the thread pools.
pub fn start(cfg: ServiceConfig, exec: Arc<dyn CampaignExec>) -> Result<ServerHandle, String> {
    let store = Arc::new(JobStore::open(&cfg.data_dir)?);
    let listener = TcpListener::bind(&cfg.addr).map_err(|e| format!("bind {}: {e}", cfg.addr))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("set_nonblocking: {e}"))?;

    let stop = Arc::new(AtomicBool::new(false));
    let mut threads = Vec::new();

    // Connection workers.
    let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
    let conn_rx = Arc::new(Mutex::new(conn_rx));
    let ctx = Arc::new(RouteCtx {
        store: Arc::clone(&store),
        stop: Arc::clone(&stop),
        allow_remote_shutdown: cfg.allow_remote_shutdown,
    });
    for i in 0..cfg.conn_threads.max(1) {
        let rx = Arc::clone(&conn_rx);
        let ctx = Arc::clone(&ctx);
        threads.push(
            std::thread::Builder::new()
                .name(format!("ldcf-conn-{i}"))
                .spawn(move || {
                    loop {
                        let stream = match rx.lock().expect("conn queue lock").recv() {
                            Ok(s) => s,
                            Err(_) => return, // accept loop gone
                        };
                        handle_connection(stream, &ctx);
                    }
                })
                .expect("spawn connection worker"),
        );
    }

    // Scheduler workers.
    for i in 0..cfg.jobs.max(1) {
        let store = Arc::clone(&store);
        let exec = Arc::clone(&exec);
        threads.push(
            std::thread::Builder::new()
                .name(format!("ldcf-sched-{i}"))
                .spawn(move || {
                    while let Some(lease) = store.next_job() {
                        let result = exec.run(ExecRequest {
                            job_id: &lease.id,
                            spec_text: &lease.spec_text,
                            quick: lease.quick,
                            out: &lease.dir,
                            queue_wait_ms: lease.queue_wait_ms,
                            cancel: Arc::clone(&lease.cancel),
                            progress: lease.progress.clone(),
                        });
                        store.finish(&lease.id, result);
                    }
                })
                .expect("spawn scheduler worker"),
        );
    }

    // Accept loop: owns the listener and orchestrates shutdown.
    {
        let stop = Arc::clone(&stop);
        let store = Arc::clone(&store);
        let watch_signals = cfg.watch_signals;
        threads.push(
            std::thread::Builder::new()
                .name("ldcf-accept".to_string())
                .spawn(move || {
                    loop {
                        if stop.load(Ordering::SeqCst)
                            || (watch_signals && signal::shutdown_requested())
                        {
                            break;
                        }
                        match listener.accept() {
                            Ok((stream, _)) => {
                                let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
                                let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
                                if conn_tx.send(stream).is_err() {
                                    break;
                                }
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(5));
                            }
                            Err(_) => std::thread::sleep(Duration::from_millis(5)),
                        }
                    }
                    // Stop leasing jobs and cancel the running ones so
                    // their executors flush checkpoints and return.
                    store.close();
                    // Closing the channel drains the connection pool.
                    drop(conn_tx);
                })
                .expect("spawn accept loop"),
        );
    }

    Ok(ServerHandle {
        addr,
        stop,
        store,
        threads,
    })
}

struct RouteCtx {
    store: Arc<JobStore>,
    stop: Arc<AtomicBool>,
    allow_remote_shutdown: bool,
}

fn handle_connection(mut stream: TcpStream, ctx: &RouteCtx) {
    let response = match read_request(&mut stream) {
        Ok(req) => route(&req, ctx),
        Err(e) => Response::error(400, &format!("malformed request: {e}"), vec![]),
    };
    let _ = write_response(&mut stream, &response);
}

/// Dispatch one request. Unknown paths get 404, known paths with the
/// wrong method 405 — both with JSON error bodies.
fn route(req: &Request, ctx: &RouteCtx) -> Response {
    let segments = req.segments();
    match (req.method.as_str(), segments.as_slice()) {
        ("POST", ["campaigns"]) => submit(req, ctx),
        ("GET", ["campaigns"]) => {
            let jobs: Vec<Value> = ctx.store.list().iter().map(|v| v.to_value()).collect();
            Response::json(
                200,
                &Value::Object(vec![("campaigns".into(), Value::Array(jobs))]),
            )
        }
        ("GET", ["campaigns", id]) => match ctx.store.get(id) {
            Some(view) => Response::json(200, &view.to_value()),
            None => Response::error(404, &format!("no campaign {id}"), vec![]),
        },
        ("GET", ["campaigns", id, "results"]) => results(id, ctx),
        ("GET", ["campaigns", id, "artefacts", rest @ ..]) => artefact(id, rest, ctx),
        ("POST", ["campaigns", id, "cancel"]) => match ctx.store.cancel(id) {
            Some(view) => Response::json(200, &view.to_value()),
            None => Response::error(404, &format!("no campaign {id}"), vec![]),
        },
        ("POST", ["shutdown"]) if ctx.allow_remote_shutdown => {
            ctx.stop.store(true, Ordering::SeqCst);
            Response::json(
                200,
                &Value::Object(vec![(
                    "shutdown".into(),
                    Value::Str("draining".to_string()),
                )]),
            )
        }
        // Known resources addressed with the wrong verb.
        (_, ["campaigns"])
        | (_, ["campaigns", _])
        | (_, ["campaigns", _, "results"])
        | (_, ["campaigns", _, "artefacts", ..])
        | (_, ["campaigns", _, "cancel"]) => Response::error(
            405,
            &format!("method {} not allowed here", req.method),
            vec![],
        ),
        _ => Response::error(404, &format!("no route for {}", req.path), vec![]),
    }
}

fn submit(req: &Request, ctx: &RouteCtx) -> Response {
    let spec_text = match std::str::from_utf8(&req.body) {
        Ok(s) => s,
        Err(_) => return Response::error(400, "spec body is not UTF-8", vec![]),
    };
    if spec_text.trim().is_empty() {
        return Response::error(400, "empty spec body", vec![]);
    }
    match ctx.store.submit(spec_text, req.query_flag("quick")) {
        Ok((view, deduped)) => {
            let mut fields = match view.to_value() {
                Value::Object(f) => f,
                _ => unreachable!("job views are objects"),
            };
            fields.push(("deduped".into(), Value::Bool(deduped)));
            Response::json(if deduped { 200 } else { 201 }, &Value::Object(fields))
        }
        Err(SubmitError::Invalid { msg, line, col }) => {
            let mut extra = Vec::new();
            if let Some(line) = line {
                extra.push(("line".to_string(), Value::UInt(line as u64)));
            }
            if let Some(col) = col {
                extra.push(("col".to_string(), Value::UInt(col as u64)));
            }
            Response::error(400, &msg, extra)
        }
        Err(SubmitError::ShuttingDown) => Response::error(503, "server is shutting down", vec![]),
        Err(SubmitError::Io(msg)) => Response::error(500, &msg, vec![]),
    }
}

fn results(id: &str, ctx: &RouteCtx) -> Response {
    let Some(view) = ctx.store.get(id) else {
        return Response::error(404, &format!("no campaign {id}"), vec![]);
    };
    if view.state != crate::jobs::JobState::Done {
        return Response::error(
            409,
            &format!("campaign is {}, results need done", view.state.label()),
            vec![("state".to_string(), Value::Str(view.state.label().into()))],
        );
    }
    serve_file(id, "campaign.json", ctx)
}

/// Serve one whitelisted artefact from the job directory. `rest` is
/// the path after `/artefacts/` — either a top-level artefact name or
/// `cells/<checkpoint>.json`.
fn artefact(id: &str, rest: &[&str], ctx: &RouteCtx) -> Response {
    if ctx.store.get(id).is_none() {
        return Response::error(404, &format!("no campaign {id}"), vec![]);
    }
    let name = match rest {
        [name] if TOP_ARTEFACTS.contains(name) => (*name).to_string(),
        [cells, name]
            if *cells == "cells" && name.ends_with(".json") && is_safe_file_name(name) =>
        {
            format!("cells/{name}")
        }
        _ => {
            return Response::error(
                404,
                &format!("unknown artefact {:?}", rest.join("/")),
                vec![],
            )
        }
    };
    serve_file(id, &name, ctx)
}

/// Artefacts servable from a job directory's top level.
const TOP_ARTEFACTS: &[&str] = &[
    "campaign.json",
    "campaign.md",
    "campaign.manifest.json",
    "campaign-telemetry.jsonl",
    "spec.toml",
    "job.json",
];

fn is_safe_file_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
        && !name.contains("..")
}

fn serve_file(id: &str, name: &str, ctx: &RouteCtx) -> Response {
    let path = ctx.store.job_dir(id).join(name);
    match std::fs::read(&path) {
        Ok(body) => Response::file(content_type(name), body),
        Err(_) => Response::error(404, &format!("artefact {name} not produced yet"), vec![]),
    }
}

fn content_type(name: &str) -> &'static str {
    if name.ends_with(".jsonl") {
        "application/x-ndjson"
    } else if name.ends_with(".json") {
        "application/json"
    } else if name.ends_with(".md") {
        "text/markdown"
    } else if name.ends_with(".toml") {
        "text/plain"
    } else {
        "application/octet-stream"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{ExecError, ExecOutcome};
    use crate::Client;

    /// An executor that "runs" a campaign by writing a marker artefact,
    /// honouring cancellation.
    struct FakeExec {
        delay_ms: u64,
    }

    impl CampaignExec for FakeExec {
        fn run(&self, req: ExecRequest<'_>) -> Result<ExecOutcome, ExecError> {
            let deadline = std::time::Instant::now() + Duration::from_millis(self.delay_ms);
            while std::time::Instant::now() < deadline {
                if req.cancel.load(Ordering::SeqCst) {
                    return Err(ExecError::Cancelled);
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            crate::jobs::write_atomic(&req.out.join("campaign.json"), b"{\"fake\": true}\n")
                .map_err(|e| ExecError::Failed(e.to_string()))?;
            Ok(ExecOutcome {
                cells_total: 1,
                cells_run: 1,
                cells_resumed: 0,
            })
        }
    }

    const SPEC: &str = r#"
        [scenario]
        name = "server-test"

        [topology]
        kind = "grid"
        rows = 3
        cols = 3
        prr = 0.9

        [schedule]
        model = "homogeneous"
        period = 5

        [workload]
        kind = "single-flood"
        packets = 1

        [matrix]
        protocols = ["of"]
        duties = [0.2]
        seeds = [1]
        "#;

    fn start_server(tag: &str, delay_ms: u64) -> (ServerHandle, Client, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!("ldcf-server-test-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = ServiceConfig::new(&dir);
        cfg.allow_remote_shutdown = true;
        let handle = start(cfg, Arc::new(FakeExec { delay_ms })).unwrap();
        let client = Client::new(&handle.addr().to_string());
        (handle, client, dir)
    }

    fn poll_state(client: &Client, id: &str, want: &str) {
        for _ in 0..500 {
            let status = client.status(id).unwrap();
            if status.get("state").unwrap().as_str() == Some(want) {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("job {id} never reached state {want}");
    }

    #[test]
    fn submit_poll_fetch_roundtrip() {
        let (handle, client, dir) = start_server("roundtrip", 0);
        let submitted = client.submit(SPEC, false).unwrap();
        let id = submitted.get("id").unwrap().as_str().unwrap().to_string();
        assert_eq!(
            submitted.get("deduped"),
            Some(&Value::Bool(false)),
            "first submit is fresh"
        );
        poll_state(&client, &id, "done");
        assert_eq!(client.results(&id).unwrap(), b"{\"fake\": true}\n");
        assert_eq!(
            client.artefact(&id, "campaign.json").unwrap(),
            b"{\"fake\": true}\n"
        );
        let spec_back = client.artefact(&id, "spec.toml").unwrap();
        assert_eq!(spec_back, SPEC.as_bytes(), "spec served verbatim");

        // Duplicate submit dedupes onto the finished job.
        let again = client.submit(SPEC, false).unwrap();
        assert_eq!(again.get("deduped"), Some(&Value::Bool(true)));
        assert_eq!(again.get("state").unwrap().as_str(), Some("done"));

        let list = client.list().unwrap();
        match list.get("campaigns").unwrap() {
            Value::Array(jobs) => assert_eq!(jobs.len(), 1),
            other => panic!("expected array, got {other:?}"),
        }
        handle.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn http_errors_are_json_with_diagnostics() {
        let (handle, client, dir) = start_server("errors", 0);

        // 400 with the TOML parser's line/col diagnostics.
        let err = client.submit("broken ~ spec", false).unwrap_err();
        assert!(err.contains("400"), "{err}");
        assert!(err.contains("line"), "{err}");

        // Raw request checks: 404 unknown route, 405 wrong method.
        let (status, body) = client.request("GET", "/nonsense", None).unwrap();
        assert_eq!(status, 404);
        assert!(String::from_utf8_lossy(&body).contains("\"error\""));
        let (status, body) = client.request("DELETE", "/campaigns", None).unwrap();
        assert_eq!(status, 405);
        assert!(String::from_utf8_lossy(&body).contains("\"error\""));

        // Unknown id and premature results.
        let (status, _) = client.request("GET", "/campaigns/deadbeef", None).unwrap();
        assert_eq!(status, 404);
        let slow = client.submit(SPEC, false); // delay 0: may finish fast
        assert!(slow.is_ok());

        // Artefact traversal is rejected.
        let id = slow
            .unwrap()
            .get("id")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        let (status, _) = client
            .request(
                "GET",
                &format!("/campaigns/{id}/artefacts/../../etc/passwd"),
                None,
            )
            .unwrap();
        assert_eq!(status, 404);

        handle.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancel_and_remote_shutdown() {
        let (handle, client, dir) = start_server("cancel", 60_000);
        let id = client
            .submit(SPEC, false)
            .unwrap()
            .get("id")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        poll_state(&client, &id, "running");
        client.cancel(&id).unwrap();
        poll_state(&client, &id, "cancelled");

        client.shutdown().unwrap();
        handle.wait(); // returns because POST /shutdown tripped the flag
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_requeues_running_jobs_and_restart_resumes() {
        let (handle, client, dir) = start_server("requeue", 60_000);
        let id = client
            .submit(SPEC, false)
            .unwrap()
            .get("id")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        poll_state(&client, &id, "running");
        handle.stop();

        // On disk the interrupted job is queued, and a restarted
        // server picks it straight back up.
        let meta = std::fs::read_to_string(dir.join(&id).join("job.json")).unwrap();
        let meta: Value = serde_json::from_str(&meta).unwrap();
        assert_eq!(meta.get("state").unwrap().as_str(), Some("queued"));

        let mut cfg = ServiceConfig::new(&dir);
        cfg.allow_remote_shutdown = true;
        let handle = start(cfg, Arc::new(FakeExec { delay_ms: 0 })).unwrap();
        let client = Client::new(&handle.addr().to_string());
        poll_state(&client, &id, "done");
        assert_eq!(client.results(&id).unwrap(), b"{\"fake\": true}\n");
        handle.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
