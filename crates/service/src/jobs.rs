//! The durable job store.
//!
//! A job *is* a campaign output directory: `<data>/<digest>/` holds the
//! submitted `spec.toml`, a small `job.json` state record, and —
//! courtesy of the campaign runner — the digest-keyed per-cell
//! checkpoints under `cells/` plus the final artefacts. Because the
//! checkpoints already make campaigns resumable byte-identically, the
//! store needs no write-ahead log: a restarted server rescans the data
//! directory, trusts `job.json` for terminal states, and requeues
//! everything that was queued or running — the runner then reloads
//! finished cells and re-runs only the rest.
//!
//! The job id is the sha256 digest of the built (possibly quickened)
//! scenario, so identical submissions collapse onto one job: a
//! re-submitted spec that already ran returns the finished job instead
//! of burning CPU on a byte-identical re-run.

use crate::exec::{ExecError, ExecOutcome};
use ldcf_obs::{CampaignProgress, LatestProgress};
use ldcf_scenarios::{error_location, BuiltScenario, ScenarioSpec};
use serde::Value;
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Schema version of `job.json`.
pub const JOB_SCHEMA_VERSION: u64 = 1;

/// Job lifecycle. Terminal states are `Done`, `Failed`, `Cancelled`;
/// `Queued` and `Running` survive a server restart as "resume me".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Waiting for a scheduler worker.
    Queued,
    /// A worker is simulating cells right now.
    Running,
    /// Finished; `campaign.json` exists and is served by `/results`.
    Done,
    /// The runner reported an error (recorded in the job view).
    Failed,
    /// Cancelled by the user; checkpoints are kept for a resubmit.
    Cancelled,
}

impl JobState {
    /// Wire / on-disk label.
    pub fn label(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    fn from_label(s: &str) -> Option<Self> {
        Some(match s {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "done" => JobState::Done,
            "failed" => JobState::Failed,
            "cancelled" => JobState::Cancelled,
            _ => return None,
        })
    }
}

/// One job as the store tracks it.
struct JobRecord {
    id: String,
    name: String,
    quick: bool,
    state: JobState,
    error: String,
    cells_total: usize,
    cells_run: usize,
    cells_resumed: usize,
    queue_wait_ms: u64,
    spec_text: String,
    progress: Arc<LatestProgress>,
    cancel: Arc<AtomicBool>,
    /// Cancellation was requested by a user (vs. a server shutdown,
    /// which requeues instead of cancelling).
    user_cancel: bool,
    enqueued_at: Option<Instant>,
}

/// Read-only snapshot of a job for API responses.
#[derive(Clone, Debug)]
pub struct JobView {
    /// Job id (spec digest).
    pub id: String,
    /// Scenario name.
    pub name: String,
    /// Quick (truncated-matrix) job?
    pub quick: bool,
    /// Current state.
    pub state: JobState,
    /// Failure message when `state == Failed`.
    pub error: String,
    /// Cells in the matrix.
    pub cells_total: usize,
    /// Cells simulated by the finishing run (0 until terminal).
    pub cells_run: usize,
    /// Cells reloaded from checkpoints by the finishing run.
    pub cells_resumed: usize,
    /// Milliseconds spent queued before the last run started.
    pub queue_wait_ms: u64,
    /// Latest heartbeat snapshot (all-zero before the first cell).
    pub progress: CampaignProgress,
}

impl JobView {
    /// JSON rendering for the HTTP API.
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("id".into(), Value::Str(self.id.clone())),
            ("name".into(), Value::Str(self.name.clone())),
            ("state".into(), Value::Str(self.state.label().into())),
            ("quick".into(), Value::Bool(self.quick)),
            ("error".into(), Value::Str(self.error.clone())),
            ("cells_total".into(), Value::UInt(self.cells_total as u64)),
            ("cells_run".into(), Value::UInt(self.cells_run as u64)),
            (
                "cells_resumed".into(),
                Value::UInt(self.cells_resumed as u64),
            ),
            ("queue_wait_ms".into(), Value::UInt(self.queue_wait_ms)),
            (
                "progress".into(),
                Value::Object(vec![
                    ("completed".into(), Value::UInt(self.progress.completed)),
                    ("total".into(), Value::UInt(self.progress.total)),
                    ("resumed".into(), Value::UInt(self.progress.resumed)),
                    (
                        "slots_per_sec".into(),
                        Value::Float(self.progress.slots_per_sec),
                    ),
                    ("eta_s".into(), Value::Float(self.progress.eta_s)),
                    ("done".into(), Value::Bool(self.progress.done)),
                ]),
            ),
        ])
    }
}

/// Why a submission was rejected.
#[derive(Clone, Debug, PartialEq)]
pub enum SubmitError {
    /// The spec does not parse or validate. `line`/`col` carry the
    /// TOML parser's diagnostics when the error has a location.
    Invalid {
        /// Human-readable diagnostic.
        msg: String,
        /// 1-based line of the offending token, if located.
        line: Option<u32>,
        /// 1-based column of the offending token, if located.
        col: Option<u32>,
    },
    /// The server is shutting down and accepts no new jobs.
    ShuttingDown,
    /// The job directory could not be created/written.
    Io(String),
}

impl SubmitError {
    fn invalid(msg: String) -> Self {
        let loc = error_location(&msg);
        SubmitError::Invalid {
            msg,
            line: loc.map(|(l, _)| l),
            col: loc.map(|(_, c)| c),
        }
    }
}

/// A job leased to a scheduler worker by [`JobStore::next_job`].
pub struct RunningJob {
    /// Job id (spec digest).
    pub id: String,
    /// Submitted spec text, verbatim.
    pub spec_text: String,
    /// Quick job?
    pub quick: bool,
    /// Milliseconds the job waited queued before this lease.
    pub queue_wait_ms: u64,
    /// Cancellation token shared with the store.
    pub cancel: Arc<AtomicBool>,
    /// Progress sink shared with the store.
    pub progress: Arc<LatestProgress>,
    /// Job output directory.
    pub dir: PathBuf,
}

struct Inner {
    jobs: Vec<JobRecord>,
    queue: VecDeque<String>,
}

/// Thread-safe job table + FIFO queue, persisted under `data_dir`.
pub struct JobStore {
    data_dir: PathBuf,
    inner: Mutex<Inner>,
    ready: Condvar,
    closed: AtomicBool,
}

impl JobStore {
    /// Open (or create) a store, rescanning existing job directories:
    /// terminal jobs are listed as-is, interrupted ones are requeued
    /// to resume from their cell checkpoints.
    pub fn open(data_dir: &Path) -> Result<Self, String> {
        std::fs::create_dir_all(data_dir)
            .map_err(|e| format!("create {}: {e}", data_dir.display()))?;
        let store = Self {
            data_dir: data_dir.to_path_buf(),
            inner: Mutex::new(Inner {
                jobs: Vec::new(),
                queue: VecDeque::new(),
            }),
            ready: Condvar::new(),
            closed: AtomicBool::new(false),
        };
        store.rescan()?;
        Ok(store)
    }

    /// The output directory of a job.
    pub fn job_dir(&self, id: &str) -> PathBuf {
        self.data_dir.join(id)
    }

    fn rescan(&self) -> Result<(), String> {
        let mut names: Vec<String> = std::fs::read_dir(&self.data_dir)
            .map_err(|e| format!("read {}: {e}", self.data_dir.display()))?
            .filter_map(|entry| {
                let entry = entry.ok()?;
                entry.file_type().ok()?.is_dir().then_some(())?;
                entry.file_name().into_string().ok()
            })
            .collect();
        // Deterministic recovery order (submit order is not persisted).
        names.sort();

        let mut inner = self.inner.lock().expect("job store lock");
        for name in names {
            let dir = self.data_dir.join(&name);
            match recover_job(&dir, &name) {
                Ok(Some(record)) => {
                    if record.state == JobState::Queued {
                        inner.queue.push_back(record.id.clone());
                    }
                    inner.jobs.push(record);
                }
                Ok(None) => {}
                Err(e) => eprintln!("[serve] skipping {}: {e}", dir.display()),
            }
        }
        // Requeued jobs must persist their queued state so a crash
        // between rescan and first lease still recovers them.
        for job in &inner.jobs {
            if job.state == JobState::Queued {
                persist_job(&self.data_dir, job)?;
            }
        }
        Ok(())
    }

    /// Validate and enqueue a spec. Returns the job view plus whether
    /// the submission deduplicated onto an existing live/finished job.
    pub fn submit(&self, spec_text: &str, quick: bool) -> Result<(JobView, bool), SubmitError> {
        if self.closed.load(Ordering::SeqCst) {
            return Err(SubmitError::ShuttingDown);
        }
        let spec = ScenarioSpec::from_toml_str(spec_text).map_err(SubmitError::invalid)?;
        let spec = if quick { spec.quicken() } else { spec };
        let built = BuiltScenario::build(spec).map_err(SubmitError::invalid)?;
        let id = built.digest();
        let name = built.spec.name.clone();
        let cells_total = built.spec.n_cells();

        let mut inner = self.inner.lock().expect("job store lock");
        if let Some(job) = inner.jobs.iter_mut().find(|j| j.id == id) {
            match job.state {
                // Live or finished: the existing job already covers the
                // submission.
                JobState::Queued | JobState::Running | JobState::Done => {
                    return Ok((view_of(job), true));
                }
                // Failed/cancelled: a resubmit means "try again" — the
                // checkpoints written so far make the retry cheap.
                JobState::Failed | JobState::Cancelled => {
                    job.state = JobState::Queued;
                    job.error.clear();
                    job.user_cancel = false;
                    job.cancel = Arc::new(AtomicBool::new(false));
                    job.progress = Arc::new(LatestProgress::new());
                    job.enqueued_at = Some(Instant::now());
                    persist_job(&self.data_dir, job).map_err(SubmitError::Io)?;
                    let view = view_of(job);
                    inner.queue.push_back(id);
                    self.ready.notify_all();
                    return Ok((view, false));
                }
            }
        }

        let dir = self.data_dir.join(&id);
        std::fs::create_dir_all(&dir)
            .map_err(|e| SubmitError::Io(format!("create {}: {e}", dir.display())))?;
        write_atomic(&dir.join("spec.toml"), spec_text.as_bytes())
            .map_err(|e| SubmitError::Io(format!("write spec.toml: {e}")))?;
        let record = JobRecord {
            id: id.clone(),
            name,
            quick,
            state: JobState::Queued,
            error: String::new(),
            cells_total,
            cells_run: 0,
            cells_resumed: 0,
            queue_wait_ms: 0,
            spec_text: spec_text.to_string(),
            progress: Arc::new(LatestProgress::new()),
            cancel: Arc::new(AtomicBool::new(false)),
            user_cancel: false,
            enqueued_at: Some(Instant::now()),
        };
        persist_job(&self.data_dir, &record).map_err(SubmitError::Io)?;
        let view = view_of(&record);
        inner.jobs.push(record);
        inner.queue.push_back(id);
        self.ready.notify_all();
        Ok((view, false))
    }

    /// Block until a job is available (or the store closes). The lease
    /// marks the job running and records its queue wait.
    pub fn next_job(&self) -> Option<RunningJob> {
        let mut inner = self.inner.lock().expect("job store lock");
        loop {
            if self.closed.load(Ordering::SeqCst) {
                return None;
            }
            if let Some(id) = inner.queue.pop_front() {
                let data_dir = self.data_dir.clone();
                let job = inner
                    .jobs
                    .iter_mut()
                    .find(|j| j.id == id)
                    .expect("queued id is tracked");
                job.state = JobState::Running;
                job.queue_wait_ms = job
                    .enqueued_at
                    .map(|t| t.elapsed().as_millis() as u64)
                    .unwrap_or(0);
                let _ = persist_job(&data_dir, job);
                return Some(RunningJob {
                    id: job.id.clone(),
                    spec_text: job.spec_text.clone(),
                    quick: job.quick,
                    queue_wait_ms: job.queue_wait_ms,
                    cancel: Arc::clone(&job.cancel),
                    progress: Arc::clone(&job.progress),
                    dir: data_dir.join(&job.id),
                });
            }
            let (guard, _) = self
                .ready
                .wait_timeout(inner, std::time::Duration::from_millis(50))
                .expect("job store lock");
            inner = guard;
        }
    }

    /// Record the outcome of a leased job. Shutdown-interrupted jobs
    /// (cancel fired without a user cancel) return to `Queued` so the
    /// next server start resumes them.
    pub fn finish(&self, id: &str, result: Result<ExecOutcome, ExecError>) {
        let mut inner = self.inner.lock().expect("job store lock");
        let data_dir = self.data_dir.clone();
        let Some(job) = inner.jobs.iter_mut().find(|j| j.id == id) else {
            return;
        };
        match result {
            Ok(outcome) => {
                job.state = JobState::Done;
                job.error.clear();
                job.cells_total = outcome.cells_total;
                job.cells_run = outcome.cells_run;
                job.cells_resumed = outcome.cells_resumed;
            }
            Err(ExecError::Cancelled) => {
                job.state = if job.user_cancel {
                    JobState::Cancelled
                } else {
                    JobState::Queued
                };
            }
            Err(ExecError::Failed(msg)) => {
                job.state = JobState::Failed;
                job.error = msg;
            }
        }
        let _ = persist_job(&data_dir, job);
    }

    /// Cancel a job: dequeues it if still queued, fires the cancel
    /// token if running, no-op if already terminal. `None` for an
    /// unknown id.
    pub fn cancel(&self, id: &str) -> Option<JobView> {
        let mut inner = self.inner.lock().expect("job store lock");
        let data_dir = self.data_dir.clone();
        let in_queue = inner.queue.iter().any(|q| q == id);
        if in_queue {
            inner.queue.retain(|q| q != id);
        }
        let job = inner.jobs.iter_mut().find(|j| j.id == id)?;
        match job.state {
            JobState::Queued => {
                job.state = JobState::Cancelled;
                job.user_cancel = true;
                let _ = persist_job(&data_dir, job);
            }
            JobState::Running => {
                job.user_cancel = true;
                job.cancel.store(true, Ordering::SeqCst);
            }
            JobState::Done | JobState::Failed | JobState::Cancelled => {}
        }
        Some(view_of(job))
    }

    /// Snapshot one job.
    pub fn get(&self, id: &str) -> Option<JobView> {
        let inner = self.inner.lock().expect("job store lock");
        inner.jobs.iter().find(|j| j.id == id).map(view_of)
    }

    /// Snapshot every job, in recovery/submit order.
    pub fn list(&self) -> Vec<JobView> {
        let inner = self.inner.lock().expect("job store lock");
        inner.jobs.iter().map(view_of).collect()
    }

    /// Begin shutdown: refuse new submissions, stop leasing queued
    /// jobs, and fire the cancel token of every running job so its
    /// executor flushes checkpoints and returns.
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        let inner = self.inner.lock().expect("job store lock");
        for job in &inner.jobs {
            if job.state == JobState::Running {
                job.cancel.store(true, Ordering::SeqCst);
            }
        }
        self.ready.notify_all();
    }

    /// Has [`close`](Self::close) been called?
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }
}

fn view_of(job: &JobRecord) -> JobView {
    JobView {
        id: job.id.clone(),
        name: job.name.clone(),
        quick: job.quick,
        state: job.state,
        error: job.error.clone(),
        cells_total: job.cells_total,
        cells_run: job.cells_run,
        cells_resumed: job.cells_resumed,
        queue_wait_ms: job.queue_wait_ms,
        progress: job.progress.snapshot(),
    }
}

/// Serialize a job's durable state (runtime-only fields — progress,
/// cancel token, queue instant — are deliberately not persisted).
fn persist_job(data_dir: &Path, job: &JobRecord) -> Result<(), String> {
    let v = Value::Object(vec![
        ("schema_version".into(), Value::UInt(JOB_SCHEMA_VERSION)),
        ("id".into(), Value::Str(job.id.clone())),
        ("name".into(), Value::Str(job.name.clone())),
        ("quick".into(), Value::Bool(job.quick)),
        ("state".into(), Value::Str(job.state.label().into())),
        ("error".into(), Value::Str(job.error.clone())),
        ("cells_total".into(), Value::UInt(job.cells_total as u64)),
        ("cells_run".into(), Value::UInt(job.cells_run as u64)),
        (
            "cells_resumed".into(),
            Value::UInt(job.cells_resumed as u64),
        ),
        ("queue_wait_ms".into(), Value::UInt(job.queue_wait_ms)),
    ]);
    let path = data_dir.join(&job.id).join("job.json");
    let text = serde_json::to_string_pretty(&v).expect("job serializes") + "\n";
    write_atomic(&path, text.as_bytes()).map_err(|e| format!("write {}: {e}", path.display()))
}

pub use ldcf_obs::write_atomic;

/// Rebuild one job record from its directory. `Ok(None)` skips entries
/// that are not job directories (no `spec.toml`).
fn recover_job(dir: &Path, dirname: &str) -> Result<Option<JobRecord>, String> {
    let spec_path = dir.join("spec.toml");
    if !spec_path.exists() {
        return Ok(None);
    }
    let spec_text =
        std::fs::read_to_string(&spec_path).map_err(|e| format!("read spec.toml: {e}"))?;
    let meta =
        std::fs::read_to_string(dir.join("job.json")).map_err(|e| format!("read job.json: {e}"))?;
    let meta: Value = serde_json::from_str(&meta).map_err(|e| format!("parse job.json: {e}"))?;
    if meta.get("schema_version").and_then(Value::as_u64) != Some(JOB_SCHEMA_VERSION) {
        return Err("job.json schema mismatch".into());
    }
    let quick = matches!(meta.get("quick"), Some(Value::Bool(true)));
    let state = meta
        .get("state")
        .and_then(Value::as_str)
        .and_then(JobState::from_label)
        .ok_or("job.json has no valid state")?;

    // Re-derive the digest: a job directory whose spec no longer
    // hashes to its name is corrupt and must not be served under a
    // digest it does not match.
    let spec = ScenarioSpec::from_toml_str(&spec_text).map_err(|e| format!("stale spec: {e}"))?;
    let spec = if quick { spec.quicken() } else { spec };
    let built = BuiltScenario::build(spec).map_err(|e| format!("stale spec: {e}"))?;
    if built.digest() != dirname {
        return Err(format!(
            "spec digest {} does not match directory name",
            built.digest()
        ));
    }

    let mut state = state;
    match state {
        // `done` is only trusted if the artefact is actually there.
        JobState::Done if !dir.join("campaign.json").exists() => state = JobState::Queued,
        // An interrupted run resumes from its checkpoints.
        JobState::Running => state = JobState::Queued,
        _ => {}
    }
    let get_usize = |key: &str| {
        meta.get(key)
            .and_then(Value::as_u64)
            .map(|v| v as usize)
            .unwrap_or(0)
    };
    Ok(Some(JobRecord {
        id: dirname.to_string(),
        name: built.spec.name.clone(),
        quick,
        state,
        error: meta
            .get("error")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_string(),
        cells_total: built.spec.n_cells(),
        cells_run: get_usize("cells_run"),
        cells_resumed: get_usize("cells_resumed"),
        queue_wait_ms: meta
            .get("queue_wait_ms")
            .and_then(Value::as_u64)
            .unwrap_or(0),
        spec_text,
        progress: Arc::new(LatestProgress::new()),
        cancel: Arc::new(AtomicBool::new(false)),
        user_cancel: false,
        enqueued_at: if state == JobState::Queued {
            Some(Instant::now())
        } else {
            None
        },
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = r#"
        [scenario]
        name = "store-test"

        [topology]
        kind = "grid"
        rows = 3
        cols = 3
        prr = 0.9

        [schedule]
        model = "homogeneous"
        period = 5

        [workload]
        kind = "single-flood"
        packets = 1

        [matrix]
        protocols = ["of"]
        duties = [0.2, 0.4]
        seeds = [1, 2]
        "#;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ldcf-jobstore-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn submit_enqueues_and_dedupes() {
        let dir = tmpdir("dedupe");
        let store = JobStore::open(&dir).unwrap();
        let (view, deduped) = store.submit(SPEC, false).unwrap();
        assert!(!deduped);
        assert_eq!(view.state, JobState::Queued);
        assert_eq!(view.cells_total, 4);
        assert_eq!(view.id.len(), 64);

        let (again, deduped) = store.submit(SPEC, false).unwrap();
        assert!(deduped, "identical spec must dedupe");
        assert_eq!(again.id, view.id);
        assert_eq!(store.list().len(), 1);

        // Quick truncation changes the matrix, hence the digest.
        let (quick, deduped) = store.submit(SPEC, true).unwrap();
        assert!(!deduped);
        assert_ne!(quick.id, view.id);
        assert_eq!(quick.cells_total, 2, "2 duties x 2 seeds quickened to 2x1");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_specs_are_rejected_with_location() {
        let dir = tmpdir("invalid");
        let store = JobStore::open(&dir).unwrap();
        match store.submit("broken ~ spec", false) {
            Err(SubmitError::Invalid { msg, line, col }) => {
                assert!(msg.contains("line 1"), "{msg}");
                assert_eq!(line, Some(1));
                assert_eq!(col, Some(1));
            }
            other => panic!("expected Invalid, got {other:?}"),
        }
        // Semantic errors have no location but still reject.
        match store.submit("[scenario]\nname = \"x!\"", false) {
            Err(SubmitError::Invalid { line, .. }) => assert_eq!(line, None),
            other => panic!("expected Invalid, got {other:?}"),
        }
        assert!(store.list().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lease_finish_and_cancel_lifecycle() {
        let dir = tmpdir("lifecycle");
        let store = JobStore::open(&dir).unwrap();
        let (view, _) = store.submit(SPEC, false).unwrap();

        let lease = store.next_job().expect("queued job leases");
        assert_eq!(lease.id, view.id);
        assert_eq!(store.get(&view.id).unwrap().state, JobState::Running);

        // User cancel while running fires the token; the state flips
        // when the executor acknowledges with Cancelled.
        store.cancel(&view.id).unwrap();
        assert!(lease.cancel.load(Ordering::SeqCst));
        store.finish(&view.id, Err(ExecError::Cancelled));
        assert_eq!(store.get(&view.id).unwrap().state, JobState::Cancelled);

        // Resubmitting a cancelled job requeues it.
        let (view, deduped) = store.submit(SPEC, false).unwrap();
        assert!(!deduped);
        assert_eq!(view.state, JobState::Queued);
        let lease = store.next_job().unwrap();
        store.finish(
            &lease.id,
            Ok(ExecOutcome {
                cells_total: 4,
                cells_run: 4,
                cells_resumed: 0,
            }),
        );
        let done = store.get(&view.id).unwrap();
        assert_eq!(done.state, JobState::Done);
        assert_eq!(done.cells_run, 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_interrupt_requeues_instead_of_cancelling() {
        let dir = tmpdir("interrupt");
        let store = JobStore::open(&dir).unwrap();
        let (view, _) = store.submit(SPEC, false).unwrap();
        let lease = store.next_job().unwrap();
        store.close();
        assert!(lease.cancel.load(Ordering::SeqCst), "close fires cancel");
        assert!(store.next_job().is_none(), "closed store leases nothing");
        assert!(matches!(
            store.submit(SPEC, true),
            Err(SubmitError::ShuttingDown)
        ));
        store.finish(&view.id, Err(ExecError::Cancelled));
        assert_eq!(
            store.get(&view.id).unwrap().state,
            JobState::Queued,
            "shutdown interruption must persist as queued, not cancelled"
        );

        // A fresh store over the same directory resumes it.
        drop(store);
        let store = JobStore::open(&dir).unwrap();
        let view = store.get(&view.id).unwrap();
        assert_eq!(view.state, JobState::Queued);
        assert!(store.next_job().is_some(), "requeued job leases again");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rescan_trusts_done_only_with_artefact() {
        let dir = tmpdir("rescan");
        let store = JobStore::open(&dir).unwrap();
        let (view, _) = store.submit(SPEC, false).unwrap();
        let lease = store.next_job().unwrap();
        std::fs::write(lease.dir.join("campaign.json"), "{}").unwrap();
        store.finish(
            &lease.id,
            Ok(ExecOutcome {
                cells_total: 4,
                cells_run: 4,
                cells_resumed: 0,
            }),
        );
        drop(store);

        // done + artefact present → still done after a restart.
        let store = JobStore::open(&dir).unwrap();
        assert_eq!(store.get(&view.id).unwrap().state, JobState::Done);
        drop(store);

        // job.json says done but campaign.json vanished → requeue.
        std::fs::remove_file(dir.join(&view.id).join("campaign.json")).unwrap();
        let store = JobStore::open(&dir).unwrap();
        assert_eq!(store.get(&view.id).unwrap().state, JobState::Queued);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
