//! SIGINT/SIGTERM → graceful-shutdown flag, without a libc crate.
//!
//! The workspace vendors no `libc`/`signal-hook`, but on every Unix
//! target `std` already links the platform C library, so the C89
//! `signal()` entry point can be declared directly. The handler does
//! the only async-signal-safe thing there is to do: flip a static
//! atomic, which the server's accept loop polls.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the handler on the first SIGINT/SIGTERM.
static SHUTDOWN_REQUESTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::*;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        /// C89 `signal(2)`; the return value (previous handler) is
        /// deliberately ignored.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN_REQUESTED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        // SAFETY: `signal` is the C standard library function; the
        // handler only performs an atomic store, which is
        // async-signal-safe.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// No signals to hook on non-Unix targets; `POST /shutdown` (or
    /// process kill) remains available.
    pub fn install() {}
}

/// Install the SIGINT/SIGTERM handlers (idempotent).
pub fn install_handlers() {
    imp::install();
}

/// Has a termination signal arrived since the handlers were installed?
pub fn shutdown_requested() -> bool {
    SHUTDOWN_REQUESTED.load(Ordering::SeqCst)
}

/// Programmatic equivalent of a signal (used by `POST /shutdown` and
/// by tests).
pub fn request_shutdown() {
    SHUTDOWN_REQUESTED.store(true, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_sets_the_flag() {
        install_handlers();
        request_shutdown();
        assert!(shutdown_requested());
    }
}
