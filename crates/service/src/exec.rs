//! The seam between the service and the campaign runner.
//!
//! The service crate owns jobs, HTTP, and scheduling; the *running* of
//! a campaign belongs to `ldcf-bench`, which sits above this crate in
//! the dependency graph (its `experiments` binary embeds the server).
//! [`CampaignExec`] inverts that dependency: the binary injects the
//! runner as a trait object, and the service never links the simulator.

use ldcf_obs::ProgressSink;
use std::path::Path;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// Everything an executor needs to run (or resume) one job.
pub struct ExecRequest<'a> {
    /// Job id — the digest of the (possibly quickened) spec.
    pub job_id: &'a str,
    /// The submitted scenario spec, verbatim TOML text.
    pub spec_text: &'a str,
    /// Quick (truncated-matrix) run?
    pub quick: bool,
    /// Job output directory (checkpoints under `cells/`, artefacts at
    /// the top level).
    pub out: &'a Path,
    /// Milliseconds the job waited queued before this run.
    pub queue_wait_ms: u64,
    /// Cooperative cancellation: when set, the runner must stop
    /// starting new cells, flush the checkpoints of cells in flight,
    /// and return [`ExecError::Cancelled`].
    pub cancel: Arc<AtomicBool>,
    /// Per-cell progress, surfaced by `GET /campaigns/{id}`.
    pub progress: Arc<dyn ProgressSink>,
}

/// What a finished job reports back into the job table.
#[derive(Clone, Debug, Default)]
pub struct ExecOutcome {
    /// Cells in the matrix.
    pub cells_total: usize,
    /// Cells simulated by this run.
    pub cells_run: usize,
    /// Cells reloaded from checkpoints.
    pub cells_resumed: usize,
}

/// Why a job did not finish.
#[derive(Clone, Debug, PartialEq)]
pub enum ExecError {
    /// The cancel token fired; checkpoints are flushed and the job can
    /// resume later.
    Cancelled,
    /// The campaign failed (bad spec matrix, I/O error, ...).
    Failed(String),
}

/// A campaign runner the service can drive. Implementations must be
/// safe to call from several scheduler threads at once (the scheduler
/// bounds the concurrency).
pub trait CampaignExec: Send + Sync + 'static {
    /// Run job `req` to completion, cancellation, or failure. On `Ok`
    /// the job's `campaign.json` exists and validates.
    fn run(&self, req: ExecRequest<'_>) -> Result<ExecOutcome, ExecError>;
}
