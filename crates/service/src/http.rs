//! A minimal HTTP/1.1 layer over `std::net`, in the same no-new-deps
//! style as the hand-written TOML parser: enough of the protocol for a
//! local job API (request line, headers, `Content-Length` bodies,
//! `Connection: close` responses) and nothing more. Every connection
//! carries exactly one request/response exchange — the clients are
//! short CLI invocations and CI curls, not browsers holding keep-alive
//! pools.

use serde::Value;
use std::io::{BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on a request body (a scenario spec is a few KiB; one
/// MiB leaves two orders of magnitude of headroom without letting a
/// stray client balloon server memory).
pub const MAX_BODY: usize = 1 << 20;
/// Upper bound on one header / request line.
const MAX_LINE: usize = 8 << 10;
/// Upper bound on the header count.
const MAX_HEADERS: usize = 64;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...), as sent.
    pub method: String,
    /// Path without the query string, e.g. `/campaigns/abc123`.
    pub path: String,
    /// Decoded `key=value` pairs of the query string, in order.
    pub query: Vec<(String, String)>,
    /// Body bytes (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First query value under `key`, if any.
    pub fn query_value(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Boolean query flag: `?key`, `?key=1` or `?key=true`.
    pub fn query_flag(&self, key: &str) -> bool {
        self.query_value(key)
            .is_some_and(|v| v.is_empty() || v == "1" || v == "true")
    }

    /// The path split into non-empty segments.
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }
}

/// Read and parse one request from a connection. `Err` is a malformed
/// request the caller should answer with 400 (or drop, if the line
/// never arrived).
pub fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    let mut reader = BufReader::new(stream);
    let request_line = read_line(&mut reader)?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or("empty request line")?.to_string();
    let target = parts.next().ok_or("request line without target")?;
    match parts.next() {
        Some("HTTP/1.1") | Some("HTTP/1.0") => {}
        other => return Err(format!("unsupported protocol {other:?}")),
    }

    let mut content_length = 0usize;
    for _ in 0..MAX_HEADERS {
        let line = read_line(&mut reader)?;
        if line.is_empty() {
            let (path, query) = split_target(target);
            let mut body = vec![0u8; content_length];
            reader
                .read_exact(&mut body)
                .map_err(|e| format!("short body: {e}"))?;
            return Ok(Request {
                method,
                path,
                query,
                body,
            });
        }
        let (name, value) = line.split_once(':').ok_or("malformed header")?;
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse::<usize>()
                .map_err(|_| format!("bad content-length {value:?}"))?;
            if content_length > MAX_BODY {
                return Err(format!("body of {content_length} bytes exceeds {MAX_BODY}"));
            }
        }
    }
    Err("too many headers".into())
}

/// One CRLF-terminated line, without the terminator.
fn read_line(reader: &mut BufReader<&mut TcpStream>) -> Result<String, String> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        reader
            .read_exact(&mut byte)
            .map_err(|e| format!("connection closed mid-line: {e}"))?;
        if byte[0] == b'\n' {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return String::from_utf8(line).map_err(|_| "non-UTF-8 header".to_string());
        }
        line.push(byte[0]);
        if line.len() > MAX_LINE {
            return Err("header line too long".into());
        }
    }
}

/// Split `/path?query` into the path and decoded query pairs.
fn split_target(target: &str) -> (String, Vec<(String, String)>) {
    match target.split_once('?') {
        None => (target.to_string(), Vec::new()),
        Some((path, query)) => {
            let pairs = query
                .split('&')
                .filter(|p| !p.is_empty())
                .map(|p| match p.split_once('=') {
                    Some((k, v)) => (k.to_string(), v.to_string()),
                    None => (p.to_string(), String::new()),
                })
                .collect();
            (path.to_string(), pairs)
        }
    }
}

/// One response, always `Connection: close`.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response from a [`Value`] tree.
    pub fn json(status: u16, value: &Value) -> Self {
        Self {
            status,
            content_type: "application/json",
            body: (serde_json::to_string(value).expect("json serializes") + "\n").into_bytes(),
        }
    }

    /// A JSON error body: `{"error": msg}` plus any extra fields.
    pub fn error(status: u16, msg: &str, extra: Vec<(String, Value)>) -> Self {
        let mut fields = vec![("error".to_string(), Value::Str(msg.to_string()))];
        fields.extend(extra);
        Self::json(status, &Value::Object(fields))
    }

    /// A raw file body with an explicit content type.
    pub fn file(content_type: &'static str, body: Vec<u8>) -> Self {
        Self {
            status: 200,
            content_type,
            body,
        }
    }
}

/// Standard reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serialize a response onto the wire. Write errors are returned for
/// logging but are not fatal to the server (the peer hung up).
pub fn write_response(stream: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Round one raw request through a loopback socket pair.
    fn parse_raw(raw: &[u8]) -> Result<Request, String> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(raw).unwrap();
        client.flush().unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        read_request(&mut server_side)
    }

    #[test]
    fn parses_post_with_body_and_query() {
        let req = parse_raw(
            b"POST /campaigns?quick=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/campaigns");
        assert!(req.query_flag("quick"));
        assert!(!req.query_flag("missing"));
        assert_eq!(req.body, b"hello");
        assert_eq!(req.segments(), vec!["campaigns"]);
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse_raw(b"GET /campaigns/abc/results HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.segments(), vec!["campaigns", "abc", "results"]);
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(parse_raw(b"\r\n\r\n").is_err(), "empty request line");
        assert!(parse_raw(b"GET /x SPDY/9\r\n\r\n").is_err(), "bad protocol");
        assert!(
            parse_raw(b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n").is_err(),
            "bad content-length"
        );
        let too_big = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(parse_raw(too_big.as_bytes()).is_err(), "oversized body");
    }

    #[test]
    fn response_serializes_with_length_and_close() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        let resp = Response::error(404, "no such campaign", vec![]);
        write_response(&mut server_side, &resp).unwrap();
        drop(server_side);
        let mut raw = String::new();
        let mut client = client;
        client.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 404 Not Found\r\n"), "{raw}");
        assert!(raw.contains("Connection: close"), "{raw}");
        assert!(raw.contains("{\"error\":\"no such campaign\"}"), "{raw}");
    }
}
