//! `ldcf-service` — a long-lived campaign job service over the
//! deterministic campaign runner.
//!
//! The crate turns `experiments campaign` from a one-shot CLI into a
//! server: specs are submitted over a hand-rolled HTTP/1.1 API
//! ([`http`]), keyed by their scenario digest and persisted as job
//! directories ([`jobs`]), scheduled onto a bounded pool of campaign
//! workers ([`server`]), and executed through the [`exec::CampaignExec`]
//! seam that `ldcf-bench` implements. Because the runner's per-cell
//! checkpoints are digest-keyed and byte-deterministic, the service
//! gets dedupe (same spec → same job) and crash-resume (restart →
//! rescan → re-lease) without a database or a write-ahead log.
//!
//! Like the rest of the workspace, the crate takes no third-party
//! dependencies: sockets are `std::net`, threads are `std::thread`,
//! signals are a two-line `extern "C"` shim ([`signal`]).

pub mod client;
pub mod exec;
pub mod http;
pub mod jobs;
pub mod server;
pub mod signal;

pub use client::Client;
pub use exec::{CampaignExec, ExecError, ExecOutcome, ExecRequest};
pub use jobs::{JobState, JobStore, JobView, RunningJob, SubmitError, JOB_SCHEMA_VERSION};
pub use server::{start, ServerHandle, ServiceConfig};
pub use signal::{install_handlers, request_shutdown, shutdown_requested};
