//! A thin blocking client for the campaign service, used by the
//! `experiments submit`/`status`/`fetch` subcommands and the tests.
//! One request per connection, mirroring the server's
//! `Connection: close` policy.

use serde::Value;
use std::io::{Read, Write};
use std::net::TcpStream;

/// Client bound to one server address.
pub struct Client {
    addr: String,
}

impl Client {
    /// `server` is `host:port`, with an optional `http://` prefix and
    /// trailing slash (both stripped).
    pub fn new(server: &str) -> Self {
        let addr = server
            .trim()
            .trim_start_matches("http://")
            .trim_end_matches('/')
            .to_string();
        Self { addr }
    }

    /// The normalized `host:port` this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// One raw exchange. Returns the status code and body bytes; `Err`
    /// only for transport problems (HTTP-level errors come back as
    /// their status code plus JSON body).
    pub fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> Result<(u16, Vec<u8>), String> {
        let mut stream =
            TcpStream::connect(&self.addr).map_err(|e| format!("connect {}: {e}", self.addr))?;
        let body = body.unwrap_or(&[]);
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.addr,
            body.len(),
        );
        stream
            .write_all(head.as_bytes())
            .and_then(|()| stream.write_all(body))
            .and_then(|()| stream.flush())
            .map_err(|e| format!("send request: {e}"))?;

        let mut raw = Vec::new();
        stream
            .read_to_end(&mut raw)
            .map_err(|e| format!("read response: {e}"))?;
        parse_response(&raw)
    }

    /// JSON exchange: decode the body, surface non-2xx statuses (and
    /// their `error` field) as `Err`.
    fn request_json(&self, method: &str, path: &str, body: Option<&[u8]>) -> Result<Value, String> {
        let (status, body) = self.request(method, path, body)?;
        let text = String::from_utf8_lossy(&body);
        if !(200..300).contains(&status) {
            return Err(format!("HTTP {status}: {}", text.trim()));
        }
        serde_json::from_str(&text).map_err(|e| format!("bad JSON from server: {e}"))
    }

    /// Raw-bytes exchange for artefacts; non-2xx becomes `Err`.
    fn request_bytes(&self, path: &str) -> Result<Vec<u8>, String> {
        let (status, body) = self.request("GET", path, None)?;
        if !(200..300).contains(&status) {
            return Err(format!(
                "HTTP {status}: {}",
                String::from_utf8_lossy(&body).trim()
            ));
        }
        Ok(body)
    }

    /// `POST /campaigns[?quick=1]` with the spec TOML as the body.
    pub fn submit(&self, spec_toml: &str, quick: bool) -> Result<Value, String> {
        let path = if quick {
            "/campaigns?quick=1"
        } else {
            "/campaigns"
        };
        self.request_json("POST", path, Some(spec_toml.as_bytes()))
    }

    /// `GET /campaigns`.
    pub fn list(&self) -> Result<Value, String> {
        self.request_json("GET", "/campaigns", None)
    }

    /// `GET /campaigns/{id}`.
    pub fn status(&self, id: &str) -> Result<Value, String> {
        self.request_json("GET", &format!("/campaigns/{id}"), None)
    }

    /// `GET /campaigns/{id}/results` — the finished `campaign.json`.
    pub fn results(&self, id: &str) -> Result<Vec<u8>, String> {
        self.request_bytes(&format!("/campaigns/{id}/results"))
    }

    /// `GET /campaigns/{id}/artefacts/{name}`.
    pub fn artefact(&self, id: &str, name: &str) -> Result<Vec<u8>, String> {
        self.request_bytes(&format!("/campaigns/{id}/artefacts/{name}"))
    }

    /// `POST /campaigns/{id}/cancel`.
    pub fn cancel(&self, id: &str) -> Result<Value, String> {
        self.request_json("POST", &format!("/campaigns/{id}/cancel"), None)
    }

    /// `POST /shutdown` (only honoured when the server enables it).
    pub fn shutdown(&self) -> Result<Value, String> {
        self.request_json("POST", "/shutdown", None)
    }
}

/// Parse a full `Connection: close` response capture.
fn parse_response(raw: &[u8]) -> Result<(u16, Vec<u8>), String> {
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or("response without header terminator")?;
    let head = std::str::from_utf8(&raw[..header_end])
        .map_err(|_| "non-UTF-8 response head".to_string())?;
    let status_line = head.lines().next().ok_or("empty response")?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    Ok((status, raw[header_end + 4..].to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_normalization() {
        assert_eq!(
            Client::new("http://127.0.0.1:8080/").addr(),
            "127.0.0.1:8080"
        );
        assert_eq!(Client::new("localhost:9000").addr(), "localhost:9000");
    }

    #[test]
    fn response_parsing() {
        let (status, body) =
            parse_response(b"HTTP/1.1 201 Created\r\nContent-Length: 2\r\n\r\nok").unwrap();
        assert_eq!(status, 201);
        assert_eq!(body, b"ok");
        assert!(parse_response(b"garbage").is_err());
    }
}
