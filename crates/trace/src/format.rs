//! On-disk trace format.
//!
//! A [`TraceFile`] bundles a topology (nodes, positions, directed links
//! with PRR) with provenance metadata, serialised as JSON. Experiments
//! read a trace file instead of regenerating, so every figure is driven
//! by exactly the same substrate.

use ldcf_net::link::Link;
use ldcf_net::node::Position;
use ldcf_net::{LinkQuality, NodeId, Topology};
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

/// Serialisable trace: topology plus provenance.
#[derive(Serialize, Deserialize, Debug, Clone)]
pub struct TraceFile {
    /// Human-readable description of how the trace was produced.
    pub description: String,
    /// RNG seed used for generation (0 when hand-built).
    pub seed: u64,
    /// Total nodes including the source.
    pub n_nodes: usize,
    /// Node positions (metres), index-aligned with node ids.
    pub positions: Vec<(f64, f64)>,
    /// Directed links: (from, to, prr).
    pub links: Vec<(u32, u32, f64)>,
}

impl TraceFile {
    /// Capture a topology into a trace file structure.
    pub fn from_topology(topo: &Topology, description: impl Into<String>, seed: u64) -> Self {
        let positions = topo
            .positions()
            .map(|ps| ps.iter().map(|p| (p.x, p.y)).collect())
            .unwrap_or_default();
        let links = topo
            .links()
            .map(|l| (l.from.0, l.to.0, l.quality.prr()))
            .collect();
        Self {
            description: description.into(),
            seed,
            n_nodes: topo.n_nodes(),
            positions,
            links,
        }
    }

    /// Rebuild the topology described by this trace.
    pub fn to_topology(&self) -> Topology {
        let mut topo = Topology::from_links(
            self.n_nodes,
            self.links.iter().map(|&(from, to, prr)| Link {
                from: NodeId(from),
                to: NodeId(to),
                quality: LinkQuality::new(prr),
            }),
        );
        // from_links defaults reverse directions symmetric; overwrite with
        // the recorded directed values (they are all present in `links`).
        for &(from, to, prr) in &self.links {
            topo.set_quality(NodeId(from), NodeId(to), LinkQuality::new(prr));
        }
        if self.positions.len() == self.n_nodes {
            let ps = self
                .positions
                .iter()
                .map(|&(x, y)| Position::new(x, y))
                .collect();
            topo = topo.with_positions(ps);
        }
        topo
    }

    /// Serialise to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("trace serialisation cannot fail")
    }

    /// Parse from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Write to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Read from a file.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        Self::from_json(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greenorbs;

    #[test]
    fn roundtrip_preserves_topology() {
        let topo = greenorbs::default_trace(99);
        let tf = TraceFile::from_topology(&topo, "test", 99);
        let json = tf.to_json();
        let back = TraceFile::from_json(&json).unwrap();
        let topo2 = back.to_topology();

        assert_eq!(topo.n_nodes(), topo2.n_nodes());
        assert_eq!(topo.n_edges(), topo2.n_edges());
        for l in topo.links() {
            let q2 = topo2.quality(l.from, l.to).expect("link survived");
            assert!((l.quality.prr() - q2.prr()).abs() < 1e-12);
        }
        assert!(topo2.positions().is_some());
    }

    #[test]
    fn save_and_load() {
        let topo = ldcf_net::Topology::line(4, LinkQuality::new(0.8));
        let tf = TraceFile::from_topology(&topo, "line", 0);
        let dir = std::env::temp_dir().join("ldcf_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("line.json");
        tf.save(&path).unwrap();
        let back = TraceFile::load(&path).unwrap();
        assert_eq!(back.n_nodes, 4);
        assert_eq!(back.links.len(), 6); // 3 undirected = 6 directed
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn asymmetric_quality_roundtrips() {
        let mut topo = ldcf_net::Topology::empty(2);
        topo.add_edge(
            NodeId(0),
            NodeId(1),
            LinkQuality::new(0.9),
            LinkQuality::new(0.3),
        );
        let tf = TraceFile::from_topology(&topo, "asym", 0);
        let t2 = tf.to_topology();
        assert!((t2.quality(NodeId(0), NodeId(1)).unwrap().prr() - 0.9).abs() < 1e-12);
        assert!((t2.quality(NodeId(1), NodeId(0)).unwrap().prr() - 0.3).abs() < 1e-12);
    }
}
