//! # ldcf-trace — synthetic GreenOrbs-style deployment traces
//!
//! The paper's evaluation (§V-B) is driven by a topology trace from the
//! GreenOrbs forest-monitoring system: **298 sensors**, with per-link
//! quality computed from **six months of RSSI measurements**. That trace
//! is proprietary, so this crate builds the closest synthetic
//! equivalent (documented in `DESIGN.md` §2):
//!
//! 1. [`deploy`] samples a clustered forest deployment — sensors grouped
//!    around tree clusters inside a rectangular plot, plus a sink/source.
//! 2. [`propagation`] turns pairwise distance into received signal
//!    strength via a log-distance path-loss model with log-normal
//!    shadowing (the standard outdoor WSN propagation model).
//! 3. [`prr`] maps RSSI to packet-reception ratio with a CC2420-style
//!    sigmoid, and averages many noisy RSSI draws to emulate the paper's
//!    long-term measurement campaign.
//! 4. [`mod@format`] serialises the resulting [`ldcf_net::Topology`] (plus
//!    metadata) to JSON so experiments are reproducible and inspectable.
//!
//! The [`greenorbs`] module wires these together; [`generate`] with the
//! default config yields a connected 298-node topology whose degree and
//! PRR distributions are qualitatively GreenOrbs-like (mixed good and
//! lossy links, mean degree ≈ 13, multi-hop source eccentricity ≈ 20).

#![warn(missing_docs)]

pub mod deploy;
pub mod format;
pub mod greenorbs;
pub mod propagation;
pub mod prr;

pub use format::TraceFile;
pub use greenorbs::{generate, GreenOrbsConfig};
