//! Log-distance path-loss propagation with log-normal shadowing.
//!
//! The standard outdoor WSN model: received power at distance `d` is
//!
//! ```text
//! RSSI(d) = P_tx - PL(d0) - 10·n·log10(d/d0) + X_sigma
//! ```
//!
//! where `n` is the path-loss exponent (forests: 3–4 because of foliage),
//! and `X_sigma ~ N(0, sigma²)` is shadowing. Per-*pair* shadowing is
//! drawn once (obstacles are static), while per-*measurement* fading is
//! drawn per sample in [`crate::prr::PrrModel::long_term_prr`].

use crate::deploy::standard_normal;
use rand::Rng;

/// Propagation model parameters (CC2420-class radio in forest).
#[derive(Clone, Debug)]
pub struct Propagation {
    /// Transmit power in dBm.
    pub tx_power_dbm: f64,
    /// Path loss at the reference distance, in dB.
    pub pl_d0_db: f64,
    /// Reference distance in metres.
    pub d0: f64,
    /// Path-loss exponent (forest: ~3.5).
    pub exponent: f64,
    /// Standard deviation of static (per-pair) shadowing, in dB.
    pub shadowing_sigma_db: f64,
    /// Standard deviation of per-measurement fading, in dB.
    pub fading_sigma_db: f64,
}

impl Default for Propagation {
    fn default() -> Self {
        Self {
            tx_power_dbm: 0.0, // CC2420 max
            pl_d0_db: 40.0,
            d0: 1.0,
            exponent: 2.8,
            shadowing_sigma_db: 4.0,
            fading_sigma_db: 2.0,
        }
    }
}

impl Propagation {
    /// Deterministic mean RSSI (dBm) at distance `d` metres (no shadowing).
    pub fn mean_rssi(&self, d: f64) -> f64 {
        let d = d.max(self.d0); // inside the reference distance, clamp
        self.tx_power_dbm - self.pl_d0_db - 10.0 * self.exponent * (d / self.d0).log10()
    }

    /// Mean RSSI plus one static per-pair shadowing draw.
    pub fn shadowed_rssi<R: Rng + ?Sized>(&self, d: f64, rng: &mut R) -> f64 {
        self.mean_rssi(d) + standard_normal(rng) * self.shadowing_sigma_db
    }

    /// One instantaneous RSSI measurement around a (shadowed) mean.
    pub fn measure<R: Rng + ?Sized>(&self, shadowed_mean: f64, rng: &mut R) -> f64 {
        shadowed_mean + standard_normal(rng) * self.fading_sigma_db
    }

    /// The distance at which mean RSSI crosses `rssi_dbm` — handy for
    /// choosing a neighborhood cut-off radius.
    pub fn range_at_rssi(&self, rssi_dbm: f64) -> f64 {
        let exp = (self.tx_power_dbm - self.pl_d0_db - rssi_dbm) / (10.0 * self.exponent);
        self.d0 * 10f64.powf(exp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rssi_decreases_with_distance() {
        let p = Propagation::default();
        let mut prev = f64::INFINITY;
        for d in [1.0, 5.0, 10.0, 30.0, 60.0, 100.0] {
            let r = p.mean_rssi(d);
            assert!(r < prev, "RSSI must be monotone decreasing");
            prev = r;
        }
    }

    #[test]
    fn reference_distance_clamps() {
        let p = Propagation::default();
        assert_eq!(p.mean_rssi(0.0), p.mean_rssi(p.d0));
    }

    #[test]
    fn range_inverts_mean_rssi() {
        let p = Propagation::default();
        for d in [10.0, 25.0, 50.0] {
            let r = p.mean_rssi(d);
            assert!((p.range_at_rssi(r) - d).abs() / d < 1e-9);
        }
    }

    #[test]
    fn shadowing_spreads_around_mean() {
        let p = Propagation::default();
        let mut rng = StdRng::seed_from_u64(9);
        let d = 30.0;
        let n = 10_000;
        let draws: Vec<f64> = (0..n).map(|_| p.shadowed_rssi(d, &mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        assert!((mean - p.mean_rssi(d)).abs() < 0.2);
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((var.sqrt() - p.shadowing_sigma_db).abs() < 0.2);
    }
}
