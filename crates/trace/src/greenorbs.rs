//! GreenOrbs-style synthetic topology generation.
//!
//! Combines the clustered deployment, propagation model and long-term
//! PRR averaging into a [`Topology`] matching the paper's evaluation
//! substrate: 298 sensors + 1 source, mixed good/lossy links, multi-hop
//! diameter. Links whose long-term PRR falls below `min_prr` are pruned
//! (they would never carry a unicast in any of the three protocols), and
//! the generator retries with fresh randomness until the graph is
//! connected, mirroring how a real deployment is densified until the
//! sink reaches everyone.

use crate::deploy::{sample_positions, DeployConfig};
use crate::propagation::Propagation;
use crate::prr::PrrModel;
use ldcf_net::{LinkQuality, NodeId, Topology};
use rand::Rng;

/// Full configuration of the synthetic GreenOrbs trace.
#[derive(Clone, Debug, Default)]
pub struct GreenOrbsConfig {
    /// Node placement parameters.
    pub deploy: DeployConfig,
    /// Radio propagation parameters.
    pub propagation: Propagation,
    /// RSSI→PRR mapping.
    pub prr: PrrModel,
    /// Extra knobs.
    pub opts: GenOpts,
}

/// Generation options.
#[derive(Clone, Debug)]
pub struct GenOpts {
    /// Links with long-term PRR below this are dropped from the trace.
    pub min_prr: f64,
    /// Number of RSSI samples averaged per link ("six months").
    pub rssi_samples: u32,
    /// Maximum candidate link distance (metres); pairs farther apart are
    /// not even measured. Keeps generation O(n²) with a small constant.
    pub max_link_distance: f64,
    /// Maximum regeneration attempts to obtain a connected graph.
    pub max_attempts: u32,
}

impl Default for GenOpts {
    fn default() -> Self {
        Self {
            min_prr: 0.3,
            rssi_samples: 64,
            max_link_distance: 50.0,
            max_attempts: 20,
        }
    }
}

/// Generate a connected GreenOrbs-style topology.
///
/// Panics if no connected topology is found within
/// `opts.max_attempts` attempts — with the default parameters the first
/// attempt virtually always succeeds.
pub fn generate<R: Rng + ?Sized>(cfg: &GreenOrbsConfig, rng: &mut R) -> Topology {
    for _ in 0..cfg.opts.max_attempts {
        let topo = generate_once(cfg, rng);
        if topo.is_connected() {
            return topo;
        }
    }
    panic!(
        "could not generate a connected {}-node topology in {} attempts; \
         loosen min_prr or max_link_distance",
        cfg.deploy.n_nodes, cfg.opts.max_attempts
    );
}

fn generate_once<R: Rng + ?Sized>(cfg: &GreenOrbsConfig, rng: &mut R) -> Topology {
    let positions = sample_positions(&cfg.deploy, rng);
    let n = positions.len();
    let mut topo = Topology::empty(n);
    for a in 0..n {
        for b in (a + 1)..n {
            let d = positions[a].distance(&positions[b]);
            if d > cfg.opts.max_link_distance {
                continue;
            }
            // Static per-pair shadowing is shared; per-direction fading
            // histories differ, giving mildly asymmetric PRR as observed
            // in real testbeds.
            let shadowed = cfg.propagation.shadowed_rssi(d, rng);
            let p_ab =
                cfg.prr
                    .long_term_prr(&cfg.propagation, shadowed, cfg.opts.rssi_samples, rng);
            let p_ba =
                cfg.prr
                    .long_term_prr(&cfg.propagation, shadowed, cfg.opts.rssi_samples, rng);
            if p_ab >= cfg.opts.min_prr && p_ba >= cfg.opts.min_prr {
                topo.add_edge(
                    NodeId::from(a),
                    NodeId::from(b),
                    LinkQuality::new(p_ab.min(1.0)),
                    LinkQuality::new(p_ba.min(1.0)),
                );
            }
        }
    }
    topo.with_positions(positions)
}

/// Convenience: the paper's default 298-sensor trace from a seed.
pub fn default_trace(seed: u64) -> Topology {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    generate(&GreenOrbsConfig::default(), &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_cfg() -> GreenOrbsConfig {
        GreenOrbsConfig {
            deploy: DeployConfig {
                n_nodes: 60,
                width: 150.0,
                height: 120.0,
                n_clusters: 6,
                ..DeployConfig::default()
            },
            ..GreenOrbsConfig::default()
        }
    }

    #[test]
    fn small_trace_is_connected_and_lossy() {
        let mut rng = StdRng::seed_from_u64(42);
        let t = generate(&small_cfg(), &mut rng);
        assert_eq!(t.n_nodes(), 60);
        assert!(t.is_connected());
        let mq = t.mean_link_quality().unwrap();
        assert!(mq > 0.2 && mq < 1.0, "mean quality {mq}");
        // Mixed link qualities: some good, some transitional.
        let mut good = 0;
        let mut lossy = 0;
        for l in t.links() {
            if l.quality.prr() > 0.9 {
                good += 1;
            } else if l.quality.prr() < 0.7 {
                lossy += 1;
            }
        }
        assert!(good > 0, "expected some high-quality links");
        assert!(lossy > 0, "expected some transitional links");
    }

    #[test]
    fn default_trace_matches_paper_scale() {
        let t = default_trace(7);
        assert_eq!(t.n_sensors(), 298);
        assert!(t.is_connected());
        let ecc = t.source_eccentricity();
        assert!(
            (4..=30).contains(&ecc),
            "source eccentricity {ecc} should be multi-hop"
        );
        // PRR floor respected.
        for l in t.links() {
            assert!(l.quality.prr() >= 0.3);
        }
    }

    #[test]
    fn generation_is_deterministic_under_seed() {
        let a = default_trace(123);
        let b = default_trace(123);
        assert_eq!(a.n_edges(), b.n_edges());
        let la: Vec<_> = a.links().map(|l| (l.from, l.to)).collect();
        let lb: Vec<_> = b.links().map(|l| (l.from, l.to)).collect();
        assert_eq!(la, lb);
    }

    #[test]
    fn distant_pairs_are_not_linked() {
        let mut rng = StdRng::seed_from_u64(5);
        let t = generate(&small_cfg(), &mut rng);
        let pos = t.positions().unwrap();
        for l in t.links() {
            let d = pos[l.from.index()].distance(&pos[l.to.index()]);
            assert!(d <= GenOpts::default().max_link_distance);
        }
    }
}
