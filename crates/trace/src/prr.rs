//! RSSI → PRR mapping and long-term averaging.
//!
//! CC2420-class radios exhibit a sharp sigmoid between received power and
//! packet-reception ratio: below the sensitivity floor nothing gets
//! through, a few dB above it nearly everything does, and in between lies
//! the *transitional region* responsible for the lossy links that
//! dominate Fig. 7's analysis. The paper computed per-link quality from
//! six months of RSSI measurements; [`PrrModel::long_term_prr`] emulates that by
//! averaging the sigmoid over many fading draws.

use crate::propagation::Propagation;
use rand::Rng;

/// RSSI→PRR sigmoid parameters.
#[derive(Clone, Debug)]
pub struct PrrModel {
    /// RSSI (dBm) at which PRR = 0.5 (mid transitional region).
    pub midpoint_dbm: f64,
    /// Sigmoid steepness in dB (smaller = sharper transition).
    pub width_db: f64,
}

impl Default for PrrModel {
    fn default() -> Self {
        Self {
            midpoint_dbm: -87.0, // a few dB above CC2420's -94 dBm floor
            width_db: 2.0,
        }
    }
}

impl PrrModel {
    /// Instantaneous PRR for a given RSSI.
    pub fn prr(&self, rssi_dbm: f64) -> f64 {
        let z = (rssi_dbm - self.midpoint_dbm) / self.width_db;
        1.0 / (1.0 + (-z).exp())
    }

    /// Long-term PRR of a pair at static shadowed mean `shadowed_rssi`:
    /// the average of instantaneous PRR over `samples` fading draws.
    /// This is the synthetic analogue of the paper's six-month RSSI
    /// measurement campaign.
    pub fn long_term_prr<R: Rng + ?Sized>(
        &self,
        prop: &Propagation,
        shadowed_rssi: f64,
        samples: u32,
        rng: &mut R,
    ) -> f64 {
        assert!(samples >= 1);
        let mut total = 0.0;
        for _ in 0..samples {
            total += self.prr(prop.measure(shadowed_rssi, rng));
        }
        total / samples as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sigmoid_midpoint_is_half() {
        let m = PrrModel::default();
        assert!((m.prr(m.midpoint_dbm) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sigmoid_is_monotone() {
        let m = PrrModel::default();
        let mut prev = 0.0;
        for rssi in (-110..-60).map(|x| x as f64) {
            let p = m.prr(rssi);
            assert!(p >= prev);
            prev = p;
        }
    }

    #[test]
    fn strong_signal_is_near_perfect_weak_is_near_zero() {
        let m = PrrModel::default();
        assert!(m.prr(-70.0) > 0.99);
        assert!(m.prr(-100.0) < 0.01);
    }

    #[test]
    fn long_term_prr_matches_instantaneous_without_fading() {
        let m = PrrModel::default();
        let prop = Propagation {
            fading_sigma_db: 0.0,
            ..Propagation::default()
        };
        let mut rng = StdRng::seed_from_u64(5);
        let p = m.long_term_prr(&prop, -85.0, 100, &mut rng);
        assert!((p - m.prr(-85.0)).abs() < 1e-9);
    }

    #[test]
    fn fading_smooths_the_transition() {
        // With fading, a link at exactly the midpoint stays ~0.5, but a
        // link slightly above gains less than the no-fading sigmoid says
        // (Jensen: the sigmoid is concave above the midpoint).
        let m = PrrModel::default();
        let prop = Propagation {
            fading_sigma_db: 4.0,
            ..Propagation::default()
        };
        let mut rng = StdRng::seed_from_u64(6);
        let above = m.long_term_prr(&prop, m.midpoint_dbm + 3.0, 20_000, &mut rng);
        assert!(above < m.prr(m.midpoint_dbm + 3.0));
        assert!(above > 0.5);
    }
}
