//! Clustered forest deployment sampler.
//!
//! GreenOrbs sensors were mounted on trees in a forest plot; nodes are
//! therefore spatially *clustered* rather than uniform. We model this as
//! a Matérn-style cluster process: `n_clusters` parent points uniform in
//! the plot, each with daughter sensors scattered around it with a
//! Gaussian spread, plus a fraction of uniform "stragglers". The source
//! (sink) is placed near one corner of the plot, as field sinks usually
//! sit at the plot boundary with the uplink.

use ldcf_net::node::Position;
use rand::Rng;
use rand_distr_normal::sample_normal;

/// Parameters of the clustered deployment.
#[derive(Clone, Debug)]
pub struct DeployConfig {
    /// Total number of nodes *including* the source.
    pub n_nodes: usize,
    /// Plot width in metres.
    pub width: f64,
    /// Plot height in metres.
    pub height: f64,
    /// Number of tree clusters.
    pub n_clusters: usize,
    /// Gaussian spread of sensors around a cluster centre (metres).
    pub cluster_spread: f64,
    /// Fraction of nodes placed uniformly instead of in clusters.
    pub straggler_fraction: f64,
}

impl Default for DeployConfig {
    fn default() -> Self {
        Self {
            n_nodes: 299, // source + 298 sensors, as in the paper
            width: 450.0,
            height: 350.0,
            n_clusters: 24,
            cluster_spread: 18.0,
            straggler_fraction: 0.15,
        }
    }
}

/// Sample node positions. Index 0 is the source, placed near the plot
/// corner; indices `1..n_nodes` are sensors.
pub fn sample_positions<R: Rng + ?Sized>(cfg: &DeployConfig, rng: &mut R) -> Vec<Position> {
    assert!(cfg.n_nodes >= 2, "need a source and at least one sensor");
    assert!(cfg.n_clusters >= 1);
    assert!((0.0..=1.0).contains(&cfg.straggler_fraction));

    let mut positions = Vec::with_capacity(cfg.n_nodes);
    // Source near the (0,0) corner, slightly inside the plot.
    positions.push(Position::new(cfg.width * 0.04, cfg.height * 0.04));

    let centres: Vec<Position> = (0..cfg.n_clusters)
        .map(|_| {
            Position::new(
                rng.random_range(0.0..cfg.width),
                rng.random_range(0.0..cfg.height),
            )
        })
        .collect();

    for _ in 1..cfg.n_nodes {
        let p = if rng.random::<f64>() < cfg.straggler_fraction {
            Position::new(
                rng.random_range(0.0..cfg.width),
                rng.random_range(0.0..cfg.height),
            )
        } else {
            let c = centres[rng.random_range(0..centres.len())];
            let x = c.x + sample_normal(rng) * cfg.cluster_spread;
            let y = c.y + sample_normal(rng) * cfg.cluster_spread;
            Position::new(x.clamp(0.0, cfg.width), y.clamp(0.0, cfg.height))
        };
        positions.push(p);
    }
    positions
}

/// Minimal standard-normal sampling (Box–Muller) so we do not need the
/// `rand_distr` crate.
mod rand_distr_normal {
    use rand::Rng;

    /// One standard-normal draw via Box–Muller.
    pub fn sample_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // Avoid ln(0).
        let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.random::<f64>();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

pub use rand_distr_normal::sample_normal as standard_normal;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn positions_count_and_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = DeployConfig::default();
        let pos = sample_positions(&cfg, &mut rng);
        assert_eq!(pos.len(), 299);
        for p in &pos {
            assert!(p.x >= 0.0 && p.x <= cfg.width);
            assert!(p.y >= 0.0 && p.y <= cfg.height);
        }
    }

    #[test]
    fn source_is_near_corner() {
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = DeployConfig::default();
        let pos = sample_positions(&cfg, &mut rng);
        assert!(pos[0].x < cfg.width * 0.1 && pos[0].y < cfg.height * 0.1);
    }

    #[test]
    fn deployment_is_clustered() {
        // Clustered point sets have a much smaller mean nearest-neighbor
        // distance than uniform ones with the same intensity.
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = DeployConfig {
            straggler_fraction: 0.0,
            ..DeployConfig::default()
        };
        let pos = sample_positions(&cfg, &mut rng);
        let mean_nn = |pts: &[Position]| -> f64 {
            let mut total = 0.0;
            for (i, a) in pts.iter().enumerate() {
                let mut best = f64::INFINITY;
                for (j, b) in pts.iter().enumerate() {
                    if i != j {
                        best = best.min(a.distance(b));
                    }
                }
                total += best;
            }
            total / pts.len() as f64
        };
        let uniform: Vec<Position> = (0..pos.len())
            .map(|_| {
                Position::new(
                    rng.random_range(0.0..cfg.width),
                    rng.random_range(0.0..cfg.height),
                )
            })
            .collect();
        assert!(
            mean_nn(&pos) < mean_nn(&uniform) * 0.8,
            "clustered deployment should compress nearest-neighbor distances"
        );
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
