//! # ldcf — flooding in low-duty-cycle wireless sensor networks
//!
//! Umbrella crate reproducing *"Understanding the Flooding in
//! Low-Duty-Cycle Wireless Sensor Networks"* (Li, Li, Liu, Tang —
//! ICPP 2011). It re-exports the workspace crates:
//!
//! * [`theory`] (`ldcf-core`) — the paper's analytical contribution:
//!   flooding delay limits, Galton–Watson analysis, Algorithm 1, the
//!   link-loss eigen-analysis and the duty-cycle trade-off advisor.
//! * [`net`] (`ldcf-net`) — network substrate: schedules, links,
//!   topologies, radios, local synchronization.
//! * [`trace`] (`ldcf-trace`) — synthetic GreenOrbs-style traces.
//! * [`sim`] (`ldcf-sim`) — the slotted simulator.
//! * [`protocols`] (`ldcf-protocols`) — OPT / DBAO / OF / baselines.
//! * [`analysis`] (`ldcf-analysis`) — series statistics and parallel
//!   sweeps.
//!
//! ## Quickstart
//!
//! ```
//! use ldcf::prelude::*;
//!
//! // A small lossy grid, duty cycle 10%, 3 packets.
//! let topo = Topology::grid(4, 4, LinkQuality::new(0.8));
//! let cfg = SimConfig {
//!     period: 10,
//!     active_per_period: 1,
//!     n_packets: 3,
//!     coverage: 1.0,
//!     max_slots: 100_000,
//!     seed: 1,
//!     mistiming_prob: 0.0,
//! };
//! let (report, _energy) = Engine::new(topo, cfg, Dbao::new()).run();
//! assert!(report.all_covered());
//! println!("mean flooding delay: {:?}", report.mean_flooding_delay());
//! ```

pub use ldcf_analysis as analysis;
pub use ldcf_core as theory;
pub use ldcf_net as net;
pub use ldcf_protocols as protocols;
pub use ldcf_sim as sim;
pub use ldcf_trace as trace;

/// Convenient glob-import of the most used types.
pub mod prelude {
    pub use ldcf_net::{
        LinkQuality, NeighborTable, NodeId, Packet, PacketId, Topology, WorkingSchedule, SOURCE,
    };
    pub use ldcf_protocols::{Dbao, NaiveFlood, OpportunisticFlooding, Opt};
    pub use ldcf_sim::{Engine, FloodingProtocol, SimConfig, SimReport, TxIntent};
    pub use ldcf_trace::{GreenOrbsConfig, TraceFile};
}
